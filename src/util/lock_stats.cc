#include "util/lock_stats.h"

#include <map>
#include <memory>
#include <mutex>

namespace dl::lockstats {

namespace {

// Interning table. Uses a raw std::mutex (not dl::Mutex — a dl::Mutex here
// would recurse into Record on its own contention) and leaks, matching the
// lock-order checker's Graph: mutexes may report during static destruction,
// so the Table (and every Entry it owns) lives for the process lifetime.
struct Table {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Entry>> entries;
  std::unique_ptr<Entry> overflow;  // "<other>": names past kMaxTrackedLocks
};

Table* table() {
  static Table* t = new Table();
  return t;
}

std::atomic<uint64_t> g_total_contentions{0};
std::atomic<uint64_t> g_total_wait_us{0};

Entry* Intern(const char* name) {
  Table* t = table();
  std::lock_guard<std::mutex> lock(t->mu);
  auto it = t->entries.find(name);
  if (it != t->entries.end()) return it->second.get();
  if (t->entries.size() >= static_cast<size_t>(kMaxTrackedLocks)) {
    if (t->overflow == nullptr) {
      t->overflow = std::make_unique<Entry>();
      t->overflow->name = "<other>";
    }
    return t->overflow.get();
  }
  auto owned = std::make_unique<Entry>();
  Entry* e = owned.get();
  e->name = name;
  t->entries.emplace(e->name, std::move(owned));
  return e;
}

int BucketIndex(int64_t wait_us) {
  if (wait_us <= 1) return 0;
  int idx = 63 - __builtin_clzll(static_cast<uint64_t>(wait_us));
  return idx < kWaitBuckets ? idx : kWaitBuckets - 1;
}

void CopyRow(const Entry& e, std::vector<Row>& out) {
  uint64_t contentions = e.contentions.load(std::memory_order_relaxed);
  if (contentions == 0) return;
  Row row;
  row.name = e.name;
  row.contentions = contentions;
  row.wait_us_total = e.wait_us_total.load(std::memory_order_relaxed);
  row.max_wait_us = e.max_wait_us.load(std::memory_order_relaxed);
  for (int i = 0; i < kWaitBuckets; ++i) {
    row.buckets[i] = e.buckets[i].load(std::memory_order_relaxed);
  }
  out.push_back(std::move(row));
}

void ZeroEntry(Entry& e) {
  e.contentions.store(0, std::memory_order_relaxed);
  e.wait_us_total.store(0, std::memory_order_relaxed);
  e.max_wait_us.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kWaitBuckets; ++i) {
    e.buckets[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace

void Record(std::atomic<Entry*>& slot, const char* name, int64_t wait_us) {
  if (wait_us < 0) wait_us = 0;
  Entry* e = slot.load(std::memory_order_acquire);
  if (e == nullptr) {
    e = Intern(name);
    // Another thread may have filled the slot concurrently with the same
    // interned pointer (names intern to one Entry); a plain store is fine.
    slot.store(e, std::memory_order_release);
  }
  uint64_t us = static_cast<uint64_t>(wait_us);
  e->contentions.fetch_add(1, std::memory_order_relaxed);
  e->wait_us_total.fetch_add(us, std::memory_order_relaxed);
  e->buckets[BucketIndex(wait_us)].fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = e->max_wait_us.load(std::memory_order_relaxed);
  while (prev < us && !e->max_wait_us.compare_exchange_weak(
                          prev, us, std::memory_order_relaxed)) {
  }
  g_total_contentions.fetch_add(1, std::memory_order_relaxed);
  g_total_wait_us.fetch_add(us, std::memory_order_relaxed);
}

std::vector<Row> Snapshot() {
  Table* t = table();
  std::vector<Row> rows;
  std::lock_guard<std::mutex> lock(t->mu);
  rows.reserve(t->entries.size());
  for (const auto& [name, entry] : t->entries) CopyRow(*entry, rows);
  if (t->overflow != nullptr) CopyRow(*t->overflow, rows);
  return rows;
}

uint64_t TotalContentions() {
  return g_total_contentions.load(std::memory_order_relaxed);
}

uint64_t TotalWaitMicros() {
  return g_total_wait_us.load(std::memory_order_relaxed);
}

void ResetForTest() {
  Table* t = table();
  std::lock_guard<std::mutex> lock(t->mu);
  for (const auto& [name, entry] : t->entries) ZeroEntry(*entry);
  if (t->overflow != nullptr) ZeroEntry(*t->overflow);
  g_total_contentions.store(0, std::memory_order_relaxed);
  g_total_wait_us.store(0, std::memory_order_relaxed);
}

}  // namespace dl::lockstats
