#ifndef DEEPLAKE_UTIL_LOCK_HIERARCHY_H_
#define DEEPLAKE_UTIL_LOCK_HIERARCHY_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace dl {

/// Parsed form of the machine-readable lock-hierarchy manifest
/// (`lock_hierarchy.txt`, DESIGN.md §11). The manifest is the single source
/// of truth for the repo's lock ordering: `tools/dllint` checks the static
/// acquisition graph it extracts from the sources against it, and the
/// runtime lock-order checker (`lock_order::SetDeclaredEdges`) checks the
/// dynamic graph against it, so the documented hierarchy and the code can
/// never drift apart.
///
/// Format, one directive per line (`#` comments and blank lines ignored):
///
///   edge <outer> -> <inner>   # <outer> may be held while acquiring <inner>
///   leaf <name>               # <name> is never held across another acquire
struct LockHierarchy {
  struct Edge {
    std::string from;
    std::string to;
    int line;  // 1-based line in the manifest, for stale-edge reports
  };

  std::vector<Edge> edges;                 // declared direct edges
  std::vector<std::pair<std::string, int>> leaves;  // declared leaf locks
  std::set<std::pair<std::string, std::string>> closure;  // transitive

  /// Every lock name the manifest mentions (edge endpoints and leaves).
  std::set<std::string> names;

  /// True when holding `from` while acquiring `to` is sanctioned — i.e.
  /// (from, to) is in the transitive closure of the declared edges.
  bool Declared(const std::string& from, const std::string& to) const {
    return closure.count({from, to}) > 0;
  }

  /// True when the lock has at least one declared outgoing edge (it is held
  /// across other acquisitions, so blocking work under it is suspect).
  bool NonLeaf(const std::string& name) const {
    for (const Edge& e : edges) {
      if (e.from == name) return true;
    }
    return false;
  }
};

/// Parses manifest text. Fails with InvalidArgument on unknown directives,
/// malformed edges, duplicate declarations, or a lock declared both a leaf
/// and an edge source.
Result<LockHierarchy> ParseLockHierarchy(std::string_view text);

/// Loads and parses a manifest file. NotFound when the file is absent.
Result<LockHierarchy> LoadLockHierarchyFile(const std::string& path);

}  // namespace dl

#endif  // DEEPLAKE_UTIL_LOCK_HIERARCHY_H_
