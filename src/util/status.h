#ifndef DEEPLAKE_UTIL_STATUS_H_
#define DEEPLAKE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dl {

/// Canonical error codes, modeled after the Arrow/RocksDB status vocabulary.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kNotImplemented = 7,
  kFailedPrecondition = 8,
  kAborted = 9,
  kResourceExhausted = 10,
  kUnknown = 11,
  /// A fault that is expected to clear on its own: object-store 5xx,
  /// connection reset, request timeout. Always retryable.
  kTransient = 12,
  /// An optimistic-concurrency conflict: another writer published an
  /// overlapping change first (version::WriteTxn publish). Retryable —
  /// rebuilding the transaction against the new head usually succeeds.
  kConflict = 13,
};

/// Returns a stable human-readable name for a status code ("IOError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Error-or-success value returned by fallible library operations.
///
/// Deep Lake library code never throws; every operation that can fail
/// returns `Status` (or `Result<T>`, see result.h). The OK status carries
/// no allocation.
///
/// `[[nodiscard]]`: ignoring a returned Status is a compile error
/// (-Werror=unused-result). Call sites that genuinely cannot propagate —
/// destructors, best-effort cleanup — must say so explicitly by logging
/// through obs::RecordErrorEvent or casting to void with a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status Transient(std::string msg) {
    return Status(StatusCode::kTransient, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsTransient() const { return code_ == StatusCode::kTransient; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }

  /// Transient-vs-permanent classification for retry layers
  /// (storage::RetryingStore, the dataloader's fetch retries, the MVCC
  /// publish loop). Retryable: explicit transient faults, I/O errors
  /// (network hiccups, throttled or flaky backends), resource exhaustion
  /// and optimistic-concurrency conflicts (a fresh transaction against the
  /// new head usually lands). Permanent input/state errors (NotFound,
  /// InvalidArgument, Corruption, ...) must not be retried — repeating
  /// them cannot succeed and hides real bugs.
  bool IsRetryable() const {
    return code_ == StatusCode::kTransient || code_ == StatusCode::kIOError ||
           code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kConflict;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context + ": "` prepended to the
  /// message. Useful when propagating errors up through layers.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace dl

#endif  // DEEPLAKE_UTIL_STATUS_H_
