#ifndef DEEPLAKE_UTIL_THREAD_POOL_H_
#define DEEPLAKE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dl {

/// Fixed-size worker pool with a FIFO queue and optional high-priority lane.
///
/// The streaming dataloader's "smart scheduler" (paper §4.6) classifies
/// decode jobs as CPU-intensive and fetch jobs as IO-bound; CPU-intensive
/// jobs are submitted on the priority lane so decoding never starves behind
/// a deep prefetch queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Enqueues a task ahead of normal-priority tasks.
  void SubmitPriority(std::function<void()> task);

  /// Blocks until every submitted task has finished and the queue is empty.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::deque<std::function<void()>> priority_queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Counting semaphore used to bound in-flight memory (prefetch budget).
class Semaphore {
 public:
  explicit Semaphore(int64_t count) : count_(count) {}

  void Acquire(int64_t n = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ >= n; });
    count_ -= n;
  }

  /// Tries to acquire without blocking; returns false if unavailable.
  bool TryAcquire(int64_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ < n) return false;
    count_ -= n;
    return true;
  }

  void Release(int64_t n = 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      count_ += n;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_;
};

}  // namespace dl

#endif  // DEEPLAKE_UTIL_THREAD_POOL_H_
