#ifndef DEEPLAKE_UTIL_THREAD_POOL_H_
#define DEEPLAKE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace dl {

/// Fixed-size worker pool with a FIFO queue and optional high-priority lane.
///
/// The streaming dataloader's "smart scheduler" (paper §4.6) classifies
/// decode jobs as CPU-intensive and fetch jobs as IO-bound; CPU-intensive
/// jobs are submitted on the priority lane so decoding never starves behind
/// a deep prefetch queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task) DL_EXCLUDES(mu_);

  /// Enqueues a task ahead of normal-priority tasks.
  void SubmitPriority(std::function<void()> task) DL_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished and the queue is empty.
  void Wait() DL_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() DL_EXCLUDES(mu_);

  Mutex mu_{"thread_pool.mu"};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ DL_GUARDED_BY(mu_);
  std::deque<std::function<void()>> priority_queue_ DL_GUARDED_BY(mu_);
  size_t active_ DL_GUARDED_BY(mu_) = 0;
  bool shutdown_ DL_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // written only in the constructor
};

/// Counting semaphore used to bound in-flight memory (prefetch budget).
class Semaphore {
 public:
  explicit Semaphore(int64_t count) : count_(count) {}

  void Acquire(int64_t n = 1) DL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (count_ < n) cv_.Wait(mu_);
    count_ -= n;
  }

  /// Tries to acquire without blocking; returns false if unavailable.
  bool TryAcquire(int64_t n = 1) DL_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (count_ < n) return false;
    count_ -= n;
    return true;
  }

  void Release(int64_t n = 1) DL_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      count_ += n;
    }
    cv_.NotifyAll();
  }

 private:
  Mutex mu_{"semaphore.mu"};
  CondVar cv_;
  int64_t count_ DL_GUARDED_BY(mu_);
};

}  // namespace dl

#endif  // DEEPLAKE_UTIL_THREAD_POOL_H_
