#include "util/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define DL_CRC32_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__)
#define DL_CRC32_ARM 1
#if defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define DL_CRC32_ARM_BUILTIN 1
#elif defined(__GNUC__)
// Compiler wasn't invoked with +crc, but GCC/Clang let us scope the feature
// to the functions that need it and we still guard execution behind the
// HWCAP runtime check.
#include <arm_acle.h>
#define DL_CRC32_ARM_ATTR 1
#endif
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace dl {
namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // CRC-32C reversed polynomial.

// Slice-by-8 tables: table[0] is the classic byte table; table[k] advances
// a byte through k additional zero bytes. Processing 8 bytes per step runs
// ~4-6x faster than the byte-at-a-time loop; the hardware paths below beat
// it by another ~3-10x on long runs, but this stays as the portable
// fallback and the parity oracle for fuzz_roundtrip_test.cc.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (int t = 1; t < 8; ++t) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[t][i] = (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xff];
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const auto* kTables =
      new std::array<std::array<uint32_t, 256>, 8>(MakeTables());
  return *kTables;
}

// Raw extend over the inverted state: callers wrap with ~ on both ends so
// that partial updates compose (Crc32cExtend(Crc32cExtend(0,a),b) ==
// Crc32c(a+b)). All backends share this convention.
using ExtendRawFn = uint32_t (*)(uint32_t crc, const uint8_t* p, size_t n);

uint32_t ExtendRawSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  const auto& t = Tables();
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if defined(DL_CRC32_X86)

__attribute__((target("sse4.2"))) uint32_t ExtendRawSse42(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  // Align to 8 bytes so the u64 loop reads aligned words; the crc32
  // instruction tolerates unaligned loads, but aligned is marginally faster
  // and this also exercises the byte path for short unaligned prefixes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

bool CpuHasSse42() { return __builtin_cpu_supports("sse4.2"); }

#endif  // DL_CRC32_X86

#if defined(DL_CRC32_ARM) && \
    (defined(DL_CRC32_ARM_BUILTIN) || defined(DL_CRC32_ARM_ATTR))

#if defined(DL_CRC32_ARM_ATTR)
__attribute__((target("+crc")))
#endif
uint32_t ExtendRawArm(uint32_t crc, const uint8_t* p, size_t n) {
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __crc32cb(crc, *p++);
  }
  return crc;
}

bool CpuHasArmCrc() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#elif defined(__ARM_FEATURE_CRC32)
  return true;  // baked into the target triple
#else
  return false;
#endif
}

#endif  // DL_CRC32_ARM

struct Dispatch {
  ExtendRawFn fn;
  std::string_view backend;
};

Dispatch PickBackend() {
#if defined(DL_CRC32_X86)
  if (CpuHasSse42()) return {&ExtendRawSse42, "sse4.2"};
#endif
#if defined(DL_CRC32_ARM) && \
    (defined(DL_CRC32_ARM_BUILTIN) || defined(DL_CRC32_ARM_ATTR))
  if (CpuHasArmCrc()) return {&ExtendRawArm, "armv8-crc"};
#endif
  return {&ExtendRawSoftware, "software"};
}

const Dispatch& Backend() {
  static const Dispatch kDispatch = PickBackend();
  return kDispatch;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, ByteView data) {
  return ~Backend().fn(~crc, data.data(), data.size());
}

uint32_t Crc32cExtendSoftware(uint32_t crc, ByteView data) {
  return ~ExtendRawSoftware(~crc, data.data(), data.size());
}

uint32_t Crc32c(ByteView data) { return Crc32cExtend(0, data); }

uint32_t MaskedCrc32c(ByteView data) {
  uint32_t crc = Crc32c(data);
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

std::string_view Crc32cBackend() { return Backend().backend; }

}  // namespace dl
