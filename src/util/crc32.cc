#include "util/crc32.h"

#include <array>
#include <cstring>

namespace dl {
namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // CRC-32C reversed polynomial.

// Slice-by-8 tables: table[0] is the classic byte table; table[k] advances
// a byte through k additional zero bytes. Processing 8 bytes per step runs
// ~4-6x faster than the byte-at-a-time loop — chunk writes CRC every byte
// they store, so this is on the ingestion hot path.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (int t = 1; t < 8; ++t) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[t][i] = (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xff];
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const auto* kTables =
      new std::array<std::array<uint32_t, 256>, 8>(MakeTables());
  return *kTables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, ByteView data) {
  const auto& t = Tables();
  crc = ~crc;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(ByteView data) { return Crc32cExtend(0, data); }

uint32_t MaskedCrc32c(ByteView data) {
  uint32_t crc = Crc32c(data);
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

}  // namespace dl
