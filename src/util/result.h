#ifndef DEEPLAKE_UTIL_RESULT_H_
#define DEEPLAKE_UTIL_RESULT_H_

#include <cassert>
#include <cstdlib>
#include <utility>
#include <variant>

#include "util/status.h"

namespace dl {

/// Value-or-error, the return type of fallible operations that produce a
/// value. Mirrors `arrow::Result<T>`.
///
/// A `Result<T>` is always in exactly one of two states: it holds a value
/// (and `ok()` is true) or it holds a non-OK `Status`. Accessing the value
/// of a non-OK result aborts the process — callers must check `ok()` or use
/// the `DL_ASSIGN_OR_RETURN` macro (see macros.h).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a result holding a non-OK status. Aborts if `status` is OK:
  /// an OK status carries no value and would leave the result unusable.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      assert(false && "Result<T> constructed from OK status");
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the held status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out of the result. The result must be OK.
  T MoveValue() {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value, or `fallback` when the result is an error.
  T ValueOr(T fallback) const& {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      assert(false && "accessed value of non-OK Result");
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace dl

#endif  // DEEPLAKE_UTIL_RESULT_H_
