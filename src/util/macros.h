#ifndef DEEPLAKE_UTIL_MACROS_H_
#define DEEPLAKE_UTIL_MACROS_H_

#include <utility>

#include "util/status.h"

// Propagates a non-OK Status out of the current function.
#define DL_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::dl::Status _dl_status = (expr);            \
    if (!_dl_status.ok()) return _dl_status;     \
  } while (false)

#define DL_CONCAT_IMPL(x, y) x##y
#define DL_CONCAT(x, y) DL_CONCAT_IMPL(x, y)

// Marks a function as async-signal-safe: callable from a signal handler.
// Expands to nothing for the compiler — it is a contract marker enforced by
// the `signal-safety` rule of tools/dllint (DESIGN.md §11): every function
// a DL_SIGNAL_SAFE function calls must itself be DL_SIGNAL_SAFE (resolved
// by name within the file) or on the analyzer's allowlist of known-safe
// primitives (memcpy, atomic loads/stores, backtrace after pre-warm, ...).
#define DL_SIGNAL_SAFE

// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
// moves the value into `lhs`. `lhs` may include a declaration:
//   DL_ASSIGN_OR_RETURN(auto chunk, ReadChunk(id));
#define DL_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  DL_ASSIGN_OR_RETURN_IMPL(DL_CONCAT(_dl_result_, __LINE__),   \
                           lhs, rexpr)

#define DL_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                             \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value();

#endif  // DEEPLAKE_UTIL_MACROS_H_
