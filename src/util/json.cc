#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/macros.h"

namespace dl {

namespace {

const Json& NullJson() {
  static const Json* kNull = new Json();
  return *kNull;
}

void EscapeString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void DumpNumber(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  } else {
    out += "null";  // JSON has no Inf/NaN.
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    DL_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::Corruption("json: trailing characters at " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  Result<Json> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        DL_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        DL_RETURN_IF_ERROR(Expect("true"));
        return Json(true);
      case 'f':
        DL_RETURN_IF_ERROR(Expect("false"));
        return Json(false);
      case 'n':
        DL_RETURN_IF_ERROR(Expect("null"));
        return Json(nullptr);
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::MakeObject();
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWs();
      if (Peek() != '"') return Err("expected object key");
      DL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (Peek() != ':') return Err("expected ':'");
      ++pos_;
      DL_ASSIGN_OR_RETURN(Json val, ParseValue());
      obj.Set(key, std::move(val));
      SkipWs();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      return Err("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::MakeArray();
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      DL_ASSIGN_OR_RETURN(Json val, ParseValue());
      arr.Append(std::move(val));
      SkipWs();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      return Err("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs unhandled,
            // fine for metadata keys/values which are ASCII in practice).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return Err("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Err("malformed number");
    return Json(d);
  }

  Status Expect(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Status::Corruption("json: expected '" + std::string(word) +
                                "' at " + std::to_string(pos_));
    }
    pos_ += word.size();
    return Status::OK();
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Err(std::string_view msg) const {
    return Status::Corruption("json: " + std::string(msg) + " at offset " +
                              std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Json& Json::Get(const std::string& key) const {
  if (is_object()) {
    auto it = obj_.find(key);
    if (it != obj_.end()) return it->second;
  }
  return NullJson();
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      DumpNumber(out, num_);
      break;
    case Type::kString:
      EscapeString(out, str_);
      break;
    case Type::kArray: {
      out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        EscapeString(out, k);
        out += indent > 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.num_ == b.num_;
    case Json::Type::kString:
      return a.str_ == b.str_;
    case Json::Type::kArray:
      return a.arr_ == b.arr_;
    case Json::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace dl
