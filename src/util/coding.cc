#include "util/coding.h"

#include "util/macros.h"

namespace dl {

void PutFixed16(ByteBuffer& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutFixed32(ByteBuffer& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutFixed64(ByteBuffer& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t DecodeFixed16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t DecodeFixed32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t DecodeFixed64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

void PutVarint32(ByteBuffer& out, uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

void PutVarint64(ByteBuffer& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutVarintSigned64(ByteBuffer& out, int64_t v) {
  PutVarint64(out, ZigZagEncode(v));
}

Result<uint8_t> Decoder::GetByte() {
  if (pos_ >= view_.size()) {
    return Status::Corruption("decoder: truncated input (byte)");
  }
  return view_[pos_++];
}

Result<uint16_t> Decoder::GetFixed16() {
  if (remaining() < 2) {
    return Status::Corruption("decoder: truncated input (fixed16)");
  }
  uint16_t v = DecodeFixed16(view_.data() + pos_);
  pos_ += 2;
  return v;
}

Result<uint32_t> Decoder::GetFixed32() {
  if (remaining() < 4) {
    return Status::Corruption("decoder: truncated input (fixed32)");
  }
  uint32_t v = DecodeFixed32(view_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetFixed64() {
  if (remaining() < 8) {
    return Status::Corruption("decoder: truncated input (fixed64)");
  }
  uint64_t v = DecodeFixed64(view_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<uint32_t> Decoder::GetVarint32() {
  DL_ASSIGN_OR_RETURN(uint64_t v, GetVarint64());
  if (v > UINT32_MAX) {
    return Status::Corruption("decoder: varint32 overflow");
  }
  return static_cast<uint32_t>(v);
}

Result<uint64_t> Decoder::GetVarint64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= view_.size()) {
      return Status::Corruption("decoder: truncated varint");
    }
    uint8_t b = view_[pos_++];
    if (shift >= 64 || (shift == 63 && (b & 0x7f) > 1)) {
      return Status::Corruption("decoder: varint64 overflow");
    }
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<int64_t> Decoder::GetVarintSigned64() {
  DL_ASSIGN_OR_RETURN(uint64_t v, GetVarint64());
  return ZigZagDecode(v);
}

Result<ByteView> Decoder::GetBytes(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("decoder: truncated input (bytes)");
  }
  ByteView v = view_.subview(pos_, n);
  pos_ += n;
  return v;
}

Result<std::string> Decoder::GetLengthPrefixedString() {
  DL_ASSIGN_OR_RETURN(uint64_t len, GetVarint64());
  DL_ASSIGN_OR_RETURN(ByteView v, GetBytes(len));
  return v.ToString();
}

Status Decoder::Skip(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("decoder: skip past end");
  }
  pos_ += n;
  return Status::OK();
}

void PutLengthPrefixedString(ByteBuffer& out, std::string_view s) {
  PutVarint64(out, s.size());
  AppendBytes(out, ByteView(s));
}

}  // namespace dl
