#ifndef DEEPLAKE_UTIL_CRC32_H_
#define DEEPLAKE_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

#include "util/bytes.h"

namespace dl {

/// CRC-32C (Castagnoli) over `data`. Runtime-dispatched: uses the SSE4.2
/// `crc32` instruction on x86-64 and the ARMv8 CRC32 extension on aarch64
/// when the CPU supports them, falling back to the slice-by-8 software
/// tables otherwise. All backends are bit-for-bit identical (asserted by
/// tests/fuzz_roundtrip_test.cc). Used to checksum chunk payloads, integrity
/// envelopes and framed records (TFRecord baseline).
uint32_t Crc32c(ByteView data);

/// Extends a running CRC with more data (init with crc=0 and finished=false
/// semantics: pass the previous return value back in).
uint32_t Crc32cExtend(uint32_t crc, ByteView data);

/// Masked CRC as used by the TFRecord framing (rotation + constant), so the
/// checksum of a checksum-bearing field is unlikely to collide.
uint32_t MaskedCrc32c(ByteView data);

/// The slice-by-8 table implementation, always available. Exposed so the
/// parity fuzz tests can compare the dispatched backend against it
/// bit-for-bit at arbitrary lengths/alignments/split points.
uint32_t Crc32cExtendSoftware(uint32_t crc, ByteView data);

/// Name of the backend the dispatcher selected on this machine:
/// "sse4.2", "armv8-crc" or "software". Benches report it as
/// `crc32c.backend` so before/after numbers name the hardware path used.
std::string_view Crc32cBackend();

}  // namespace dl

#endif  // DEEPLAKE_UTIL_CRC32_H_
