#ifndef DEEPLAKE_UTIL_CRC32_H_
#define DEEPLAKE_UTIL_CRC32_H_

#include <cstdint>

#include "util/bytes.h"

namespace dl {

/// CRC-32C (Castagnoli) over `data`, software table implementation.
/// Used to checksum chunk payloads and framed records (TFRecord baseline).
uint32_t Crc32c(ByteView data);

/// Extends a running CRC with more data (init with crc=0 and finished=false
/// semantics: pass the previous return value back in).
uint32_t Crc32cExtend(uint32_t crc, ByteView data);

/// Masked CRC as used by the TFRecord framing (rotation + constant), so the
/// checksum of a checksum-bearing field is unlikely to collide.
uint32_t MaskedCrc32c(ByteView data);

}  // namespace dl

#endif  // DEEPLAKE_UTIL_CRC32_H_
