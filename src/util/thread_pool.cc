#include "util/thread_pool.h"

namespace dl {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::SubmitPriority(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    priority_queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!(queue_.empty() && priority_queue_.empty() && active_ == 0)) {
    idle_cv_.Wait(mu_);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty() && priority_queue_.empty()) {
        work_cv_.Wait(mu_);
      }
      if (shutdown_ && queue_.empty() && priority_queue_.empty()) return;
      if (!priority_queue_.empty()) {
        task = std::move(priority_queue_.front());
        priority_queue_.pop_front();
      } else {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && priority_queue_.empty() && active_ == 0) {
        idle_cv_.NotifyAll();
      }
    }
  }
}

}  // namespace dl
