#include "util/thread_pool.h"

namespace dl {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::SubmitPriority(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    priority_queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] {
    return queue_.empty() && priority_queue_.empty() && active_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || !queue_.empty() || !priority_queue_.empty();
      });
      if (shutdown_ && queue_.empty() && priority_queue_.empty()) return;
      if (!priority_queue_.empty()) {
        task = std::move(priority_queue_.front());
        priority_queue_.pop_front();
      } else {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && priority_queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace dl
