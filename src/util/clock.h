#ifndef DEEPLAKE_UTIL_CLOCK_H_
#define DEEPLAKE_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace dl {

/// Monotonic wall-clock microseconds.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline void SleepMicros(int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Spins for `us`, consuming CPU — models compute costs (interpreter time,
/// kernels) that contend for cores, unlike SleepMicros which models waiting.
inline void BusyWaitMicros(int64_t us) {
  int64_t end = NowMicros() + us;
  while (NowMicros() < end) {
    // spin
  }
}

/// Simple stopwatch for benchmarks and timelines.
class Stopwatch {
 public:
  Stopwatch() : start_us_(NowMicros()) {}
  void Reset() { start_us_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_us_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  int64_t start_us_;
};

}  // namespace dl

#endif  // DEEPLAKE_UTIL_CLOCK_H_
