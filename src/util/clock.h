#ifndef DEEPLAKE_UTIL_CLOCK_H_
#define DEEPLAKE_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <ctime>
#include <thread>

namespace dl {

/// Monotonic wall-clock microseconds.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by the calling thread, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID). Deltas across a scope measure cycles the
/// thread actually burned, excluding time blocked or descheduled — the
/// basis for per-job CPU attribution (obs::ResourceMeter, DESIGN.md §7).
inline int64_t ThreadCpuMicros() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return ts.tv_sec * 1'000'000 + ts.tv_nsec / 1'000;
}

/// CPU time consumed by the whole process, in microseconds
/// (CLOCK_PROCESS_CPUTIME_ID). Benches report per-epoch deltas of this as
/// `cpu_time_per_epoch_us` so efficiency wins are visible, not just speed.
inline int64_t ProcessCpuMicros() {
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return ts.tv_sec * 1'000'000 + ts.tv_nsec / 1'000;
}

inline void SleepMicros(int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Spins for `us`, consuming CPU — models compute costs (interpreter time,
/// kernels) that contend for cores, unlike SleepMicros which models waiting.
inline void BusyWaitMicros(int64_t us) {
  int64_t end = NowMicros() + us;
  while (NowMicros() < end) {
    // spin
  }
}

/// Simple stopwatch for benchmarks and timelines.
class Stopwatch {
 public:
  Stopwatch() : start_us_(NowMicros()) {}
  void Reset() { start_us_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_us_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  int64_t start_us_;
};

}  // namespace dl

#endif  // DEEPLAKE_UTIL_CLOCK_H_
