#ifndef DEEPLAKE_UTIL_LOCK_STATS_H_
#define DEEPLAKE_UTIL_LOCK_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

// Lock-contention statistics (DESIGN.md §7). dl::Mutex::Lock() takes the
// try_lock fast path when the mutex is free; only a *contended* acquisition
// (try_lock failed, the thread actually blocked) reads the clock twice and
// reports the wait here. Uncontended locking pays one try_lock — no clock
// reads, no registry traffic.
//
// The registry lives at the util layer (a mutex cannot depend on obs), so
// the obs layer *pulls* these rows into metrics-registry instruments at
// sample time — the same pull model as SampleProcessGauges. Storage is
// bounded: at most kMaxTrackedLocks distinct names; later names collapse
// into a single "<other>" row rather than growing without limit.

namespace dl::lockstats {

/// Log2 wait-time buckets: bucket i counts waits in [2^i, 2^(i+1)) µs
/// (bucket 0 also absorbs sub-microsecond waits). 20 buckets reach ~524 s.
inline constexpr int kWaitBuckets = 20;

/// Distinct lock names tracked before collapsing into "<other>".
inline constexpr int kMaxTrackedLocks = 256;

/// One tracked lock. Entries are interned once per name and never freed
/// (leaky by design: a Mutex may report during static destruction), so the
/// cached pointer a Mutex holds stays valid for the process lifetime.
struct Entry {
  std::string name;
  std::atomic<uint64_t> contentions{0};
  std::atomic<uint64_t> wait_us_total{0};
  std::atomic<uint64_t> max_wait_us{0};
  std::atomic<uint64_t> buckets[kWaitBuckets] = {};
};

/// Records one contended acquisition. `slot` is the reporting mutex's
/// cached entry pointer: filled by interning `name` on first contention,
/// then reused so the steady state is pure atomic adds.
void Record(std::atomic<Entry*>& slot, const char* name, int64_t wait_us);

/// Point-in-time copy of one entry (Snapshot output).
struct Row {
  std::string name;
  uint64_t contentions = 0;
  uint64_t wait_us_total = 0;
  uint64_t max_wait_us = 0;
  uint64_t buckets[kWaitBuckets] = {};
};

/// Every tracked lock with at least one contention, unsorted.
std::vector<Row> Snapshot();

/// Process-wide aggregates (cheap: two relaxed loads).
uint64_t TotalContentions();
uint64_t TotalWaitMicros();

/// Zeroes every entry's counters (entries themselves persist — cached
/// pointers in live mutexes must stay valid). Test isolation only.
void ResetForTest();

}  // namespace dl::lockstats

#endif  // DEEPLAKE_UTIL_LOCK_STATS_H_
