// DebugServer: embedded live-telemetry HTTP endpoint (DESIGN.md §7). This
// file is the one sanctioned home for raw socket calls in the repo —
// scripts/check_source.py enforces that everything else (tools, tests,
// benches) goes through HttpGet/HttpRawRequest below.

#include "obs/debug_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/profiler.h"
#include "util/clock.h"
#include "util/lock_stats.h"
#include "util/macros.h"

namespace dl::obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;
constexpr size_t kMaxResponseBytes = 64ull << 20;
constexpr int kListenBacklog = 16;
constexpr int64_t kAcceptPollMs = 100;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

Status ErrnoStatus(const std::string& what, int err) {
  std::string message = what + ": " + std::strerror(err);
  if (err == EADDRINUSE) return Status::AlreadyExists(message);
  if (err == ETIMEDOUT || err == EAGAIN || err == EWOULDBLOCK ||
      err == ECONNREFUSED || err == ECONNRESET || err == EPIPE) {
    return Status::Transient(message);
  }
  return Status::IOError(message);
}

void SetIoTimeouts(int fd, int64_t timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Sends all of `data`, tolerating short writes. MSG_NOSIGNAL: a peer that
/// hung up mid-response must not SIGPIPE a training process.
bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

void WriteHttpResponse(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: " +
          (response.content_type.empty() ? "text/plain; charset=utf-8"
                                         : response.content_type) +
          "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    (void)SendAll(fd, response.body.data(), response.body.size());
  }
}

/// Opens a connected TCP socket to host:port with send/recv timeouts.
Result<int> ConnectTo(const std::string& host, int port, int64_t timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("http: bad IPv4 address '" + host + "'");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("http: socket", errno);
  SetIoTimeouts(fd, timeout_ms);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    close(fd);
    return ErrnoStatus("http: connect " + resolved + ":" +
                           std::to_string(port),
                       err);
  }
  return fd;
}

/// Reads until EOF (Connection: close framing) or the size cap.
Result<std::string> ReadToEof(int fd) {
  std::string out;
  char buf[4096];
  while (out.size() < kMaxResponseBytes) {
    ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r == 0) return out;
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("http: recv", errno);
    }
    out.append(buf, static_cast<size_t>(r));
  }
  return Status::ResourceExhausted("http: response exceeds size cap");
}

}  // namespace

// ---------------------------------------------------------------------------
// HTTP client
// ---------------------------------------------------------------------------

Result<std::string> HttpRawRequest(const std::string& host, int port,
                                   const std::string& raw_request,
                                   int64_t timeout_ms) {
  DL_ASSIGN_OR_RETURN(int fd, ConnectTo(host, port, timeout_ms));
  if (!SendAll(fd, raw_request.data(), raw_request.size())) {
    int err = errno;
    close(fd);
    return ErrnoStatus("http: send", err);
  }
  Result<std::string> response = ReadToEof(fd);
  close(fd);
  return response;
}

Result<HttpResponse> HttpGet(const std::string& host, int port,
                             const std::string& path, int64_t timeout_ms) {
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  DL_ASSIGN_OR_RETURN(std::string raw,
                      HttpRawRequest(host, port, request, timeout_ms));
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Corruption("http: response has no header terminator");
  }
  size_t line_end = raw.find("\r\n");
  // Status line: HTTP/1.x <code> <text>
  std::string status_line = raw.substr(0, line_end);
  size_t sp = status_line.find(' ');
  if (sp == std::string::npos || status_line.compare(0, 5, "HTTP/") != 0) {
    return Status::Corruption("http: malformed status line: " + status_line);
  }
  HttpResponse out;
  out.status = std::atoi(status_line.c_str() + sp + 1);
  if (out.status < 100 || out.status > 599) {
    return Status::Corruption("http: bad status code in: " + status_line);
  }
  // Case-insensitive Content-Type lookup over the header block.
  std::string headers = raw.substr(line_end + 2, header_end - line_end - 2);
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    std::string line = headers.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      for (char& c : key) c = static_cast<char>(std::tolower(c));
      if (key == "content-type") {
        size_t v = colon + 1;
        while (v < line.size() && line[v] == ' ') ++v;
        out.content_type = line.substr(v);
      }
    }
    pos = eol + 2;
  }
  out.body = raw.substr(header_end + 4);
  return out;
}

// ---------------------------------------------------------------------------
// DebugServer
// ---------------------------------------------------------------------------

DebugServer::DebugServer(MetricsRegistry* registry, TraceRecorder* recorder)
    : DebugServer(registry, recorder, Options()) {}

DebugServer::DebugServer(MetricsRegistry* registry, TraceRecorder* recorder,
                         Options options)
    : registry_(registry), recorder_(recorder), options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  if (options_.enable_watchdog) {
    watchdog_ = std::make_unique<SpanWatchdog>(recorder_, options_.watchdog);
  }
}

DebugServer::~DebugServer() {
  Status s = Stop();  // Stop() on a stopped server is OK; never fails
  (void)s;
}

Status DebugServer::Start() {
  MutexLock lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("debug server already running");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("debug server: bad bind address '" +
                                   options_.bind_address + "'");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("debug server: socket", errno);
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    close(fd);
    return ErrnoStatus("debug server: bind " + options_.bind_address + ":" +
                           std::to_string(options_.port),
                       err);
  }
  if (listen(fd, kListenBacklog) != 0) {
    int err = errno;
    close(fd);
    return ErrnoStatus("debug server: listen", err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  started_us_ = NowMicros();
  stop_.store(false, std::memory_order_relaxed);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  running_ = true;
  // Spawned under mu_ like the flight recorder: no concurrent Start/Stop
  // can observe a half-initialized listener_.
  listener_ = std::thread([this] { AcceptLoop(); });
  if (watchdog_ != nullptr && !watchdog_->running()) {
    DL_RETURN_IF_ERROR(watchdog_->Start());
  }
  return Status::OK();
}

Status DebugServer::Stop() {
  std::thread to_join;
  int fd = -1;
  {
    MutexLock lock(mu_);
    if (!running_) return Status::OK();
    running_ = false;
    to_join = std::move(listener_);
    fd = listen_fd_;
    listen_fd_ = -1;
  }
  stop_.store(true, std::memory_order_relaxed);
  if (to_join.joinable()) to_join.join();
  if (fd >= 0) close(fd);
  // ThreadPool teardown drains queued + in-flight handlers: every accepted
  // request finishes its response before Stop() returns.
  pool_.reset();
  if (watchdog_ != nullptr) DL_RETURN_IF_ERROR(watchdog_->Stop());
  return Status::OK();
}

bool DebugServer::running() const {
  MutexLock lock(mu_);
  return running_;
}

int DebugServer::port() const {
  MutexLock lock(mu_);
  return bound_port_;
}

void DebugServer::SetStatusProvider(std::function<Json()> provider) {
  MutexLock lock(mu_);
  status_provider_ = std::move(provider);
}

void DebugServer::SetFlightzProvider(std::function<Json()> provider) {
  MutexLock lock(mu_);
  flightz_provider_ = std::move(provider);
}

void DebugServer::AddHandler(const std::string& path, Handler handler) {
  MutexLock lock(mu_);
  handlers_[path] = std::move(handler);
}

void DebugServer::AcceptLoop() {
  // listen_fd_ is fixed for the thread's lifetime (Stop() clears it only
  // after joining this thread), so one read under the lock suffices.
  int fd;
  {
    MutexLock lock(mu_);
    fd = listen_fd_;
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = poll(&pfd, 1, static_cast<int>(kAcceptPollMs));
    if (ready <= 0) continue;  // timeout (re-check stop_) or EINTR
    int conn = accept(fd, nullptr, nullptr);
    if (conn < 0) continue;
    SetIoTimeouts(conn, options_.io_timeout_ms);
    int inflight = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (inflight > static_cast<int>(options_.max_inflight)) {
      // Shed load on the listener thread: cheaper than queueing work the
      // pool cannot absorb, and the 503 tells the scraper to back off.
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse busy;
      busy.status = 503;
      busy.body = "busy: too many in-flight debug requests\n";
      WriteHttpResponse(conn, busy);
      close(conn);
      continue;
    }
    pool_->Submit([this, conn] { HandleConnection(conn); });
  }
}

void DebugServer::HandleConnection(int fd) {
  std::string request;
  char buf[1024];
  bool complete = false;
  while (request.size() < kMaxRequestBytes) {
    ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;  // EOF or timeout before the header terminator: malformed
    }
    request.append(buf, static_cast<size_t>(r));
    if (request.find("\r\n\r\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  HttpResponse response;
  std::string method, path, version;
  size_t line_end = request.find("\r\n");
  if (complete && line_end != std::string::npos) {
    std::string line = request.substr(0, line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                          : line.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) {
      method = line.substr(0, sp1);
      path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      version = line.substr(sp2 + 1);
    }
  }
  if (method.empty() || path.empty() || path[0] != '/' ||
      version.compare(0, 5, "HTTP/") != 0) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (method != "GET") {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    response = Route(path);
  }
  WriteHttpResponse(fd, response);
  close(fd);
  served_.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

HttpResponse DebugServer::Route(const std::string& path) {
  std::string bare = path.substr(0, path.find('?'));
  if (bare == "/healthz") {
    HttpResponse r;
    r.status = 200;
    r.body = "ok\n";
    return r;
  }
  if (bare == "/metrics") return ServeMetrics();
  if (bare == "/statusz") return ServeStatusz();
  if (bare == "/tracez") return ServeTracez();
  if (bare == "/flightz") return ServeFlightz();
  if (bare == "/lockz") return ServeLockz();
  if (bare == "/resourcez") return ServeResourcez();
  if (bare == "/pprof/profile") return ServePprofProfile(path);
  Handler custom;
  {
    MutexLock lock(mu_);
    auto it = handlers_.find(bare);
    if (it != handlers_.end()) custom = it->second;
  }
  if (custom) return custom(path);
  HttpResponse r;
  r.status = 404;
  r.body = "no such endpoint: " + bare +
           "\nendpoints: /healthz /metrics /statusz /tracez /flightz"
           " /lockz /resourcez /pprof/profile\n";
  return r;
}

HttpResponse DebugServer::ServeMetrics() {
  SampleProcessGauges(*registry_);
  HttpResponse r;
  r.status = 200;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = PrometheusText(*registry_);
  return r;
}

HttpResponse DebugServer::ServeStatusz() {
  std::function<Json()> provider;
  int port = 0;
  int64_t started_us = 0;
  {
    MutexLock lock(mu_);
    provider = status_provider_;
    port = bound_port_;
    started_us = started_us_;
  }
  Json doc = Json::MakeObject();
  doc.Set("pid", static_cast<int64_t>(getpid()));
  doc.Set("uptime_us", NowMicros() - started_us);

  Json server = Json::MakeObject();
  server.Set("bind", options_.bind_address);
  server.Set("port", port);
  server.Set("workers", static_cast<uint64_t>(options_.num_workers));
  server.Set("requests_served", requests_served());
  server.Set("requests_rejected", requests_rejected());
  doc.Set("server", std::move(server));

  Json build = Json::MakeObject();
  build.Set("compiler", __VERSION__);
  build.Set("cxx_standard", static_cast<int64_t>(__cplusplus));
#ifdef NDEBUG
  build.Set("mode", "release");
#else
  build.Set("mode", "debug");
#endif
  doc.Set("build", std::move(build));

  Json trace = Json::MakeObject();
  trace.Set("enabled", recorder_->enabled());
  trace.Set("dropped", recorder_->dropped());
  trace.Set("open_spans",
            static_cast<uint64_t>(recorder_->OpenSpans().size()));
  doc.Set("trace", std::move(trace));

  RegistrySnapshot snap = registry_->Snapshot();
  Json metrics = Json::MakeObject();
  metrics.Set("counters", static_cast<uint64_t>(snap.counters.size()));
  metrics.Set("gauges", static_cast<uint64_t>(snap.gauges.size()));
  metrics.Set("histograms", static_cast<uint64_t>(snap.histograms.size()));
  doc.Set("metrics", std::move(metrics));

  if (provider) doc.Set("dataset", provider());

  HttpResponse r;
  r.status = 200;
  r.content_type = "application/json";
  r.body = doc.Dump();
  return r;
}

HttpResponse DebugServer::ServeTracez() {
  constexpr size_t kRecentSpans = 256;
  int64_t now = NowMicros();
  Json doc = Json::MakeObject();
  doc.Set("enabled", recorder_->enabled());
  doc.Set("dropped", recorder_->dropped());

  Json open = Json::MakeArray();
  for (const OpenSpanInfo& s : recorder_->OpenSpans()) {
    Json item = Json::MakeObject();
    item.Set("name", s.name);
    item.Set("cat", s.cat);
    if (!s.tenant.empty()) item.Set("tenant", s.tenant);
    item.Set("trace_id", s.trace_id);
    item.Set("start_us", s.start_us);
    item.Set("age_us", now - s.start_us);
    item.Set("tid", static_cast<uint64_t>(s.tid));
    open.Append(std::move(item));
  }
  doc.Set("open", std::move(open));

  doc.Set("watchdog",
          watchdog_ != nullptr ? watchdog_->SlowSpansJson() : Json());

  std::vector<TraceEvent> events = recorder_->Events();
  size_t first = events.size() > kRecentSpans ? events.size() - kRecentSpans
                                              : 0;
  Json recent = Json::MakeArray();
  for (size_t i = first; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    Json item = Json::MakeObject();
    item.Set("name", e.name);
    item.Set("cat", e.cat);
    if (!e.tenant.empty()) item.Set("tenant", e.tenant);
    item.Set("trace_id", e.trace_id);
    item.Set("ts_us", e.ts_us);
    item.Set("dur_us", e.dur_us);
    item.Set("tid", static_cast<uint64_t>(e.tid));
    recent.Append(std::move(item));
  }
  doc.Set("recent", std::move(recent));

  HttpResponse r;
  r.status = 200;
  r.content_type = "application/json";
  r.body = doc.Dump();
  return r;
}

HttpResponse DebugServer::ServeFlightz() {
  std::function<Json()> provider;
  {
    MutexLock lock(mu_);
    provider = flightz_provider_;
  }
  Json doc;
  if (provider) doc = provider();
  if (doc.is_null()) {
    doc = Json::MakeObject();
    doc.Set("interval_us", 0);
    doc.Set("dropped", 0);
    doc.Set("samples", Json::MakeArray());
  }
  HttpResponse r;
  r.status = 200;
  r.content_type = "application/json";
  r.body = doc.Dump();
  return r;
}

HttpResponse DebugServer::ServePprofProfile(const std::string& path) {
  // /pprof/profile?seconds=N — block for N wall-seconds of sampling, then
  // return folded stacks (scripts/flamegraph.py input). Clamped to the
  // worker's patience: a scrape should never wedge a worker for minutes.
  double seconds = 2.0;
  size_t q = path.find("seconds=");
  if (q != std::string::npos) {
    seconds = std::atof(path.c_str() + q + 8);
  }
  if (seconds < 0.1) seconds = 0.1;
  if (seconds > 30.0) seconds = 30.0;
  auto folded = CollectCpuProfile(seconds);
  HttpResponse r;
  if (!folded.ok()) {
    // 501: this build cannot profile (sanitizers). 503: transient — some
    // other profiler holds the timer; retry later.
    r.status = folded.status().IsNotImplemented() ? 501 : 503;
    r.body = folded.status().ToString() + "\n";
    return r;
  }
  r.status = 200;
  r.content_type = "text/plain; charset=utf-8";
  r.body = std::move(folded).value();
  return r;
}

HttpResponse DebugServer::ServeLockz() {
  std::vector<lockstats::Row> rows = lockstats::Snapshot();
  std::sort(rows.begin(), rows.end(),
            [](const lockstats::Row& a, const lockstats::Row& b) {
              return a.wait_us_total > b.wait_us_total;
            });
  Json doc = Json::MakeObject();
  doc.Set("total_contentions", lockstats::TotalContentions());
  doc.Set("total_wait_us", lockstats::TotalWaitMicros());
  Json bounds = Json::MakeArray();
  for (int i = 0; i < lockstats::kWaitBuckets; ++i) {
    bounds.Append(static_cast<uint64_t>(1) << i);
  }
  doc.Set("wait_bucket_upper_us", std::move(bounds));
  Json locks = Json::MakeArray();
  for (const auto& row : rows) {
    Json item = Json::MakeObject();
    item.Set("name", row.name);
    item.Set("contentions", row.contentions);
    item.Set("wait_us", row.wait_us_total);
    item.Set("max_wait_us", row.max_wait_us);
    item.Set("mean_wait_us",
             row.contentions == 0
                 ? 0.0
                 : static_cast<double>(row.wait_us_total) /
                       static_cast<double>(row.contentions));
    Json buckets = Json::MakeArray();
    for (uint64_t c : row.buckets) buckets.Append(c);
    item.Set("wait_buckets", std::move(buckets));
    locks.Append(std::move(item));
  }
  doc.Set("locks", std::move(locks));
  HttpResponse r;
  r.status = 200;
  r.content_type = "application/json";
  r.body = doc.Dump();
  return r;
}

HttpResponse DebugServer::ServeResourcez() {
  // Group the job.* counters by their {job, tenant} labels; the unlabeled
  // rows are the process-wide aggregates.
  RegistrySnapshot snap = registry_->Snapshot();
  struct Usage {
    uint64_t cpu_us = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_copied = 0;
  };
  std::map<std::pair<std::string, std::string>, Usage> jobs;
  Usage total;
  for (const auto& c : snap.counters) {
    uint64_t Usage::*field = nullptr;
    if (c.name == "job.cpu_us") {
      field = &Usage::cpu_us;
    } else if (c.name == "job.bytes_read") {
      field = &Usage::bytes_read;
    } else if (c.name == "job.bytes_copied") {
      field = &Usage::bytes_copied;
    } else {
      continue;
    }
    std::string job;
    std::string tenant;
    for (const auto& [key, value] : c.labels) {
      if (key == "job") job = value;
      if (key == "tenant") tenant = value;
    }
    if (c.labels.empty()) {
      total.*field += c.value;
    } else {
      jobs[{job, tenant}].*field += c.value;
    }
  }
  Json doc = Json::MakeObject();
  Json rows = Json::MakeArray();
  for (const auto& [key, usage] : jobs) {
    Json item = Json::MakeObject();
    item.Set("job", key.first);
    item.Set("tenant", key.second);
    item.Set("cpu_us", usage.cpu_us);
    item.Set("bytes_read", usage.bytes_read);
    item.Set("bytes_copied", usage.bytes_copied);
    rows.Append(std::move(item));
  }
  doc.Set("jobs", std::move(rows));
  Json agg = Json::MakeObject();
  agg.Set("cpu_us", total.cpu_us);
  agg.Set("bytes_read", total.bytes_read);
  agg.Set("bytes_copied", total.bytes_copied);
  doc.Set("total", std::move(agg));
  HttpResponse r;
  r.status = 200;
  r.content_type = "application/json";
  r.body = doc.Dump();
  return r;
}

}  // namespace dl::obs
