#ifndef DEEPLAKE_OBS_TRACE_H_
#define DEEPLAKE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/json.h"
#include "util/thread_annotations.h"

namespace dl::obs {

/// One completed span: a named interval on one thread. Timestamps are
/// steady-clock microseconds (NowMicros), matching every other timer in the
/// repo.
struct TraceEvent {
  std::string name;  // "loader.fetch", "storage.get", ...
  std::string cat;   // subsystem: "loader", "storage", "tql", ...
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  uint32_t tid = 0;  // small sequential id, assigned per recording thread
};

/// Process-wide span recorder. Disabled by default: a disabled recorder
/// costs one relaxed atomic load per span site, so instrumentation can stay
/// compiled-in everywhere (same trick as Chrome's trace_event macros).
///
/// When enabled, each recording thread appends into its own fixed-capacity
/// ring buffer (no cross-thread contention on the hot path; a ring keeps
/// the *most recent* `capacity` spans and counts what it overwrote). Rings
/// are owned by the recorder and survive thread exit, so an export after a
/// ThreadPool joins still sees worker spans.
///
/// Export is Chrome trace_event format ("ph":"X" complete events):
/// chrome://tracing and https://ui.perfetto.dev load the file directly.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 15;  // 32768 spans

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  /// Starts recording. `ring_capacity` applies to rings created after the
  /// call; existing rings keep their size.
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span on the calling thread. No-op when disabled.
  void Record(std::string name, std::string cat, int64_t ts_us,
              int64_t dur_us);

  /// All recorded spans, sorted by start time.
  std::vector<TraceEvent> Events() const;

  /// {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid"}...],
  ///  "displayTimeUnit":"ms"} — loadable by chrome://tracing.
  Json ChromeTraceJson() const;

  /// Drops recorded spans (rings stay allocated and registered).
  void Clear();

  /// Spans overwritten because a ring wrapped. Non-zero means the export
  /// is missing the *oldest* spans — size rings for one epoch's volume
  /// (see DESIGN.md §7).
  uint64_t dropped() const;

 private:
  struct Ring {
    explicit Ring(size_t capacity) : events(capacity) {}
    // Leaf lock, ordered after rings_mu_ (export walks rings under both).
    mutable Mutex mu{"obs.trace.ring.mu"};
    std::vector<TraceEvent> events DL_GUARDED_BY(mu);  // circular storage
    size_t next DL_GUARDED_BY(mu) = 0;
    bool wrapped DL_GUARDED_BY(mu) = false;
    uint64_t overwritten DL_GUARDED_BY(mu) = 0;
    uint32_t tid = 0;  // immutable after registration
  };

  Ring* ThreadRing() DL_EXCLUDES(rings_mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> ring_capacity_{kDefaultRingCapacity};
  mutable Mutex rings_mu_{"obs.trace.rings_mu"};
  std::vector<std::unique_ptr<Ring>> rings_ DL_GUARDED_BY(rings_mu_);
};

/// RAII span: records [construction, destruction) into the global recorder.
/// When the recorder is disabled at construction, the span is free (no
/// clock reads, nothing recorded at destruction).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat)
      : active_(TraceRecorder::Global().enabled()), name_(name), cat_(cat) {
    if (active_) start_us_ = NowMicros();
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early (idempotent).
  void End() {
    if (!active_) return;
    active_ = false;
    int64_t now = NowMicros();
    TraceRecorder::Global().Record(name_, cat_, start_us_, now - start_us_);
  }

 private:
  bool active_;
  const char* name_;
  const char* cat_;
  int64_t start_us_ = 0;
};

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_TRACE_H_
