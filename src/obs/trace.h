#ifndef DEEPLAKE_OBS_TRACE_H_
#define DEEPLAKE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/context.h"
#include "util/clock.h"
#include "util/json.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace dl::obs {

/// One completed span: a named interval on one thread. Timestamps are
/// steady-clock microseconds (NowMicros), matching every other timer in the
/// repo.
struct TraceEvent {
  std::string name;  // "loader.fetch", "storage.get", ...
  std::string cat;   // subsystem: "loader", "storage", "tql", ...
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  uint32_t tid = 0;  // small sequential id, assigned per recording thread
  // Owning-operation identity, inherited from the thread's CurrentContext()
  // at record time (DESIGN.md §7): spans across loader → storage share one
  // trace_id when a ContextScope is active. 0 / empty when no context was.
  uint64_t trace_id = 0;
  std::string tenant;
};

/// A currently-open (started, not yet ended) span, snapshotted by
/// TraceRecorder::OpenSpans() for /tracez and the slow-op watchdog.
struct OpenSpanInfo {
  std::string name;
  std::string cat;
  std::string tenant;
  uint64_t trace_id = 0;
  int64_t start_us = 0;
  uint32_t tid = 0;
  uint64_t token = 0;  // process-unique span handle (stable across scans)
};

/// Process-wide span recorder. Disabled by default: a disabled recorder
/// costs one relaxed atomic load per span site, so instrumentation can stay
/// compiled-in everywhere (same trick as Chrome's trace_event macros).
///
/// When enabled, each recording thread appends into its own fixed-capacity
/// ring buffer (no cross-thread contention on the hot path; a ring keeps
/// the *most recent* `capacity` spans and counts what it overwrote). Rings
/// are owned by the recorder and survive thread exit, so an export after a
/// ThreadPool joins still sees worker spans.
///
/// Export is Chrome trace_event format ("ph":"X" complete events):
/// chrome://tracing and https://ui.perfetto.dev load the file directly.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 15;  // 32768 spans

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  /// Starts recording. `ring_capacity` applies to rings created after the
  /// call; existing rings keep their size.
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span on the calling thread. No-op when disabled.
  /// The span inherits the thread's CurrentContext() trace id / tenant.
  void Record(std::string name, std::string cat, int64_t ts_us,
              int64_t dur_us);

  /// Open-span bookkeeping behind ScopedSpan: BeginSpan registers an
  /// in-flight span on the calling thread's ring and returns a non-zero
  /// token; EndSpan(token) unregisters it (must run on the same thread —
  /// spans never migrate). Returns 0 when disabled; EndSpan(0) is a no-op.
  uint64_t BeginSpan(const char* name, const char* cat, int64_t start_us);
  void EndSpan(uint64_t token);

  /// Snapshot of every in-flight span across all threads, oldest first —
  /// the /tracez "open" section and the watchdog's scan source.
  std::vector<OpenSpanInfo> OpenSpans() const;

  /// All recorded spans, sorted by start time.
  std::vector<TraceEvent> Events() const;

  /// {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid"}...],
  ///  "displayTimeUnit":"ms"} — loadable by chrome://tracing.
  Json ChromeTraceJson() const;

  /// Drops recorded spans (rings stay allocated and registered).
  void Clear();

  /// Spans overwritten because a ring wrapped. Non-zero means the export
  /// is missing the *oldest* spans — size rings for one epoch's volume
  /// (see DESIGN.md §7).
  uint64_t dropped() const;

 private:
  struct OpenSpan {
    const char* name;  // string literals at every ScopedSpan site
    const char* cat;
    int64_t start_us;
    uint64_t trace_id;
    std::string tenant;
    uint64_t token;
  };

  struct Ring {
    explicit Ring(size_t capacity) : events(capacity) {}
    // Leaf lock, ordered after rings_mu_ (export walks rings under both).
    mutable Mutex mu{"obs.trace.ring.mu"};
    std::vector<TraceEvent> events DL_GUARDED_BY(mu);  // circular storage
    size_t next DL_GUARDED_BY(mu) = 0;
    bool wrapped DL_GUARDED_BY(mu) = false;
    uint64_t overwritten DL_GUARDED_BY(mu) = 0;
    // In-flight spans on this thread, begin order (nesting order). Short:
    // bounded by the thread's span nesting depth.
    std::vector<OpenSpan> open DL_GUARDED_BY(mu);
    uint32_t tid = 0;  // immutable after registration
  };

  Ring* ThreadRing() DL_EXCLUDES(rings_mu_);

  // Process-unique recorder identity for the per-thread ring cache. An owner
  // *pointer* is not enough: tests destroy local recorders, and a new one
  // allocated at the same address would alias the stale cached ring.
  static inline std::atomic<uint64_t> next_recorder_id_{1};
  const uint64_t id_ = next_recorder_id_.fetch_add(1, std::memory_order_relaxed);

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> ring_capacity_{kDefaultRingCapacity};
  std::atomic<uint64_t> next_token_{1};
  mutable Mutex rings_mu_{"obs.trace.rings_mu"};
  std::vector<std::unique_ptr<Ring>> rings_ DL_GUARDED_BY(rings_mu_);
};

/// RAII span: records [construction, destruction) into the global recorder.
/// When the recorder is disabled at construction, the span is free (no
/// clock reads, nothing recorded at destruction). While open, the span is
/// visible to OpenSpans() / the watchdog.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat)
      : active_(TraceRecorder::Global().enabled()), name_(name), cat_(cat) {
    if (active_) {
      start_us_ = NowMicros();
      token_ = TraceRecorder::Global().BeginSpan(name, cat, start_us_);
    }
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early (idempotent).
  void End() {
    if (!active_) return;
    active_ = false;
    int64_t now = NowMicros();
    TraceRecorder::Global().EndSpan(token_);
    TraceRecorder::Global().Record(name_, cat_, start_us_, now - start_us_);
  }

 private:
  bool active_;
  const char* name_;
  const char* cat_;
  int64_t start_us_ = 0;
  uint64_t token_ = 0;
};

/// Slow-op watchdog (DESIGN.md §7): a background thread that scans
/// TraceRecorder::OpenSpans() every `interval_us` and flags any span open
/// longer than `threshold_us` — the live answer to "what is this process
/// stuck on". Each slow span is reported once (keyed by its token): a
/// snapshot lands in a bounded ring served by /tracez, and an
/// RecordErrorEvent("watchdog.slow_op", ...) puts it on the error-event
/// timeline next to the spans themselves.
class SpanWatchdog {
 public:
  struct Options {
    int64_t interval_us = 100'000;   // scan cadence (clamped >= 1ms)
    int64_t threshold_us = 1'000'000;  // open longer than this => slow
    size_t max_snapshots = 128;      // bounded slow-span ring
  };

  /// One flagged span. `age_us` is how long it had been open at flag time;
  /// the span may since have completed.
  struct SlowSpan {
    std::string name;
    std::string cat;
    std::string tenant;
    uint64_t trace_id = 0;
    int64_t start_us = 0;
    int64_t age_us = 0;
    uint32_t tid = 0;
    uint64_t token = 0;
  };

  explicit SpanWatchdog(TraceRecorder* recorder);
  SpanWatchdog(TraceRecorder* recorder, Options options);
  ~SpanWatchdog();  // stops if running

  SpanWatchdog(const SpanWatchdog&) = delete;
  SpanWatchdog& operator=(const SpanWatchdog&) = delete;

  Status Start() DL_EXCLUDES(mu_);
  Status Stop() DL_EXCLUDES(mu_);
  bool running() const DL_EXCLUDES(mu_);

  /// Runs one scan immediately on the calling thread (also what the
  /// background thread does each tick). Safe alongside a running thread.
  void ScanOnce() DL_EXCLUDES(mu_);

  /// Flagged spans, oldest first (bounded by max_snapshots).
  std::vector<SlowSpan> SlowSpans() const DL_EXCLUDES(mu_);

  /// Total spans ever flagged (monotonic; survives ring eviction).
  uint64_t flagged() const DL_EXCLUDES(mu_);

  /// {"threshold_us": ..., "flagged": ..., "slow": [...]}
  Json SlowSpansJson() const;

 private:
  void Run() DL_EXCLUDES(mu_);

  TraceRecorder* recorder_;
  Options options_;

  // Leaf lock: never held while touching recorder locks (ScanOnce snapshots
  // open spans first, then updates state) or recording error events.
  mutable Mutex mu_{"obs.span_watchdog.mu"};
  CondVar cv_;
  bool stop_ DL_GUARDED_BY(mu_) = false;
  bool running_ DL_GUARDED_BY(mu_) = false;
  std::thread thread_ DL_GUARDED_BY(mu_);
  std::vector<SlowSpan> slow_ DL_GUARDED_BY(mu_);  // oldest dropped first
  // Tokens already flagged, pruned to the currently-open set each scan so
  // the set stays bounded by live span count.
  std::unordered_set<uint64_t> reported_ DL_GUARDED_BY(mu_);
  uint64_t flagged_ DL_GUARDED_BY(mu_) = 0;
};

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_TRACE_H_
