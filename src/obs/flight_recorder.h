#ifndef DEEPLAKE_OBS_FLIGHT_RECORDER_H_
#define DEEPLAKE_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace dl::obs {

/// Flight recorder: a background sampler thread that snapshots a chosen
/// set of registry instruments at a fixed interval into a bounded
/// in-memory time-series (DESIGN.md §7). Aggregate counters answer "how
/// much, total"; the flight recorder answers "what did throughput /
/// utilization / latency look like *over the run*" — the Fig. 9/10 style
/// over-time view benches embed as a `timeline` array in BENCH_*.json.
///
/// Semantics per instrument kind:
///   - counters:   per-interval delta (and a derived `<alias>_per_sec`
///                 rate using the interval's actual elapsed time)
///   - gauges:     value at sample time
///   - histograms: per-interval count delta plus p50/p99 computed over
///                 the *interval's* bucket deltas (not cumulative), so a
///                 latency spike shows up in the sample where it happened
///
/// Usage:
///
///   FlightRecorder fr(&MetricsRegistry::Global(), {.interval_us = 5000});
///   fr.WatchCounter("loader.rows");
///   fr.WatchGauge("sim.gpu.utilization", {{"gpu", "gpu0"}}, "gpu_util");
///   fr.Start();
///   ... run the epoch ...
///   fr.Stop();                       // takes a final sample and joins
///   Json timeline = fr.TimelineJson();
///
/// The series is bounded: when `max_samples` is exceeded the *oldest*
/// samples are discarded (most-recent-wins, like the trace rings) and
/// `dropped()` counts the loss.
class FlightRecorder {
 public:
  struct Options {
    /// Sampling period. The sampler wakes this often; actual per-sample
    /// elapsed time is recorded as `dt_us` (sleep jitter is measured, not
    /// assumed away).
    int64_t interval_us = 100'000;  // 10 Hz
    /// Ring bound on retained samples; oldest dropped first.
    size_t max_samples = 4096;
  };

  /// One snapshot tick. `values` keys are watch aliases plus derived
  /// suffixes (`_per_sec` for counters; `_count`/`_p50`/`_p99` for
  /// histograms).
  struct Sample {
    int64_t t_us = 0;   // since Start()
    int64_t dt_us = 0;  // actual elapsed since the previous sample
    std::map<std::string, double> values;
  };

  explicit FlightRecorder(MetricsRegistry* registry);
  FlightRecorder(MetricsRegistry* registry, Options options);
  ~FlightRecorder();  // stops if running

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Watch registration. Call before Start(); instruments are created in
  /// the registry on registration (watching a not-yet-reporting name is
  /// fine — it reads zeros until the subsystem starts). `alias` names the
  /// series in samples; empty defaults to the instrument name.
  void WatchCounter(const std::string& name, const Labels& labels = {},
                    std::string alias = "") DL_EXCLUDES(mu_);
  void WatchGauge(const std::string& name, const Labels& labels = {},
                  std::string alias = "") DL_EXCLUDES(mu_);
  void WatchHistogram(const std::string& name, const Labels& labels = {},
                      std::string alias = "") DL_EXCLUDES(mu_);

  /// Starts the sampler thread. Clears any previous series and re-baselines
  /// counter/histogram deltas. Fails if already running.
  Status Start() DL_EXCLUDES(mu_);

  /// Takes one final sample, stops the sampler and joins it. Idempotent and
  /// safe to race: concurrent Stop() calls serialize — exactly one joins
  /// the sampler and takes the final sample, the others block until the
  /// recorder is fully stopped.
  Status Stop() DL_EXCLUDES(mu_);

  bool running() const DL_EXCLUDES(mu_);

  /// Retained samples, oldest first.
  std::vector<Sample> Samples() const DL_EXCLUDES(mu_);

  /// Samples discarded because the ring bound was exceeded.
  uint64_t dropped() const DL_EXCLUDES(mu_);

  /// {"interval_us": ..., "dropped": ...,
  ///  "samples": [{"t_us", "dt_us", "<alias>": v, ...}, ...]}
  Json TimelineJson() const;

 private:
  struct CounterWatch {
    std::string alias;
    Counter* counter;
    uint64_t prev = 0;
  };
  struct GaugeWatch {
    std::string alias;
    Gauge* gauge;
  };
  struct HistogramWatch {
    std::string alias;
    Histogram* hist;
    uint64_t prev_count = 0;
    std::vector<uint64_t> prev_buckets;
  };

  void Run() DL_EXCLUDES(mu_);
  void SampleOnce() DL_EXCLUDES(mu_);

  MetricsRegistry* registry_;
  Options options_;

  // Leaf lock: instrument reads under it are atomics, never other locks.
  mutable Mutex mu_{"obs.flight_recorder.mu"};
  CondVar cv_;

  std::vector<CounterWatch> counters_ DL_GUARDED_BY(mu_);
  std::vector<GaugeWatch> gauges_ DL_GUARDED_BY(mu_);
  std::vector<HistogramWatch> histograms_ DL_GUARDED_BY(mu_);

  bool stop_ DL_GUARDED_BY(mu_) = false;
  bool running_ DL_GUARDED_BY(mu_) = false;
  // True while one Stop() call owns the join + final sample; other Stop()
  // callers wait on cv_ until running_ drops.
  bool stopping_ DL_GUARDED_BY(mu_) = false;
  std::thread thread_ DL_GUARDED_BY(mu_);
  int64_t start_us_ DL_GUARDED_BY(mu_) = 0;
  int64_t last_us_ DL_GUARDED_BY(mu_) = 0;
  std::vector<Sample> samples_ DL_GUARDED_BY(mu_);  // oldest dropped first
  uint64_t dropped_ DL_GUARDED_BY(mu_) = 0;
};

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_FLIGHT_RECORDER_H_
