#include "obs/trace.h"

#include <algorithm>

namespace dl::obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Enable(size_t ring_capacity) {
  ring_capacity_.store(std::max<size_t>(1, ring_capacity),
                       std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

TraceRecorder::Ring* TraceRecorder::ThreadRing() {
  // One ring per (thread, recorder). The raw pointer stays valid for the
  // process lifetime: rings are owned by the recorder and never destroyed
  // (Clear only empties them).
  thread_local Ring* ring = nullptr;
  thread_local TraceRecorder* owner = nullptr;
  if (ring == nullptr || owner != this) {
    auto fresh =
        std::make_unique<Ring>(ring_capacity_.load(std::memory_order_relaxed));
    MutexLock lock(rings_mu_);
    fresh->tid = static_cast<uint32_t>(rings_.size());
    rings_.push_back(std::move(fresh));
    ring = rings_.back().get();
    owner = this;
  }
  return ring;
}

void TraceRecorder::Record(std::string name, std::string cat, int64_t ts_us,
                           int64_t dur_us) {
  if (!enabled()) return;
  Ring* ring = ThreadRing();
  MutexLock lock(ring->mu);  // uncontended except vs export
  TraceEvent& slot = ring->events[ring->next];
  if (ring->wrapped) ++ring->overwritten;
  slot.name = std::move(name);
  slot.cat = std::move(cat);
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.tid = ring->tid;
  ring->next = (ring->next + 1) % ring->events.size();
  if (ring->next == 0) ring->wrapped = true;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(rings_mu_);
    for (const auto& ring : rings_) {
      MutexLock ring_lock(ring->mu);
      size_t n = ring->wrapped ? ring->events.size() : ring->next;
      size_t first = ring->wrapped ? ring->next : 0;
      for (size_t i = 0; i < n; ++i) {
        out.push_back(ring->events[(first + i) % ring->events.size()]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

Json TraceRecorder::ChromeTraceJson() const {
  Json events = Json::MakeArray();
  for (const TraceEvent& e : Events()) {
    Json item = Json::MakeObject();
    item.Set("name", e.name);
    item.Set("cat", e.cat);
    item.Set("ph", "X");
    item.Set("ts", e.ts_us);
    item.Set("dur", e.dur_us);
    item.Set("pid", 1);
    item.Set("tid", static_cast<uint64_t>(e.tid));
    events.Append(std::move(item));
  }
  Json doc = Json::MakeObject();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

void TraceRecorder::Clear() {
  MutexLock lock(rings_mu_);
  for (auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    ring->next = 0;
    ring->wrapped = false;
    ring->overwritten = 0;
    for (auto& e : ring->events) e = TraceEvent{};
  }
}

uint64_t TraceRecorder::dropped() const {
  uint64_t total = 0;
  MutexLock lock(rings_mu_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    total += ring->overwritten;
  }
  return total;
}

}  // namespace dl::obs
