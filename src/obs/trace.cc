#include "obs/trace.h"

#include <algorithm>

#include "obs/export.h"

namespace dl::obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Enable(size_t ring_capacity) {
  ring_capacity_.store(std::max<size_t>(1, ring_capacity),
                       std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

TraceRecorder::Ring* TraceRecorder::ThreadRing() {
  // One ring per (thread, recorder). While a recorder is alive its rings are
  // never destroyed (Clear only empties them), so the cached pointer stays
  // valid as long as the owning id still matches. The cache is keyed on the
  // recorder's unique id, not its address: a recorder allocated where a
  // destroyed one used to live must not inherit the stale ring.
  thread_local Ring* ring = nullptr;
  thread_local uint64_t owner_id = 0;
  if (ring == nullptr || owner_id != id_) {
    auto fresh =
        std::make_unique<Ring>(ring_capacity_.load(std::memory_order_relaxed));
    MutexLock lock(rings_mu_);
    fresh->tid = static_cast<uint32_t>(rings_.size());
    rings_.push_back(std::move(fresh));
    ring = rings_.back().get();
    owner_id = id_;
  }
  return ring;
}

void TraceRecorder::Record(std::string name, std::string cat, int64_t ts_us,
                           int64_t dur_us) {
  if (!enabled()) return;
  const Context& context = CurrentContext();
  Ring* ring = ThreadRing();
  MutexLock lock(ring->mu);  // uncontended except vs export
  TraceEvent& slot = ring->events[ring->next];
  if (ring->wrapped) ++ring->overwritten;
  slot.name = std::move(name);
  slot.cat = std::move(cat);
  slot.ts_us = ts_us;
  slot.dur_us = dur_us;
  slot.tid = ring->tid;
  slot.trace_id = context.trace_id;
  slot.tenant = context.tenant;
  ring->next = (ring->next + 1) % ring->events.size();
  if (ring->next == 0) ring->wrapped = true;
}

uint64_t TraceRecorder::BeginSpan(const char* name, const char* cat,
                                  int64_t start_us) {
  if (!enabled()) return 0;
  const Context& context = CurrentContext();
  uint64_t token = next_token_.fetch_add(1, std::memory_order_relaxed);
  Ring* ring = ThreadRing();
  MutexLock lock(ring->mu);
  ring->open.push_back(
      OpenSpan{name, cat, start_us, context.trace_id, context.tenant, token});
  return token;
}

void TraceRecorder::EndSpan(uint64_t token) {
  if (token == 0) return;
  Ring* ring = ThreadRing();
  MutexLock lock(ring->mu);
  // Spans end LIFO in the common (nested RAII) case; scan from the back.
  for (size_t i = ring->open.size(); i > 0; --i) {
    if (ring->open[i - 1].token == token) {
      ring->open.erase(ring->open.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

std::vector<OpenSpanInfo> TraceRecorder::OpenSpans() const {
  std::vector<OpenSpanInfo> out;
  {
    MutexLock lock(rings_mu_);
    for (const auto& ring : rings_) {
      MutexLock ring_lock(ring->mu);
      for (const OpenSpan& s : ring->open) {
        OpenSpanInfo info;
        info.name = s.name;
        info.cat = s.cat;
        info.tenant = s.tenant;
        info.trace_id = s.trace_id;
        info.start_us = s.start_us;
        info.tid = ring->tid;
        info.token = s.token;
        out.push_back(std::move(info));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OpenSpanInfo& a, const OpenSpanInfo& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(rings_mu_);
    for (const auto& ring : rings_) {
      MutexLock ring_lock(ring->mu);
      size_t n = ring->wrapped ? ring->events.size() : ring->next;
      size_t first = ring->wrapped ? ring->next : 0;
      for (size_t i = 0; i < n; ++i) {
        out.push_back(ring->events[(first + i) % ring->events.size()]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

Json TraceRecorder::ChromeTraceJson() const {
  Json events = Json::MakeArray();
  for (const TraceEvent& e : Events()) {
    Json item = Json::MakeObject();
    item.Set("name", e.name);
    item.Set("cat", e.cat);
    item.Set("ph", "X");
    item.Set("ts", e.ts_us);
    item.Set("dur", e.dur_us);
    item.Set("pid", 1);
    item.Set("tid", static_cast<uint64_t>(e.tid));
    if (e.trace_id != 0) {
      Json args = Json::MakeObject();
      args.Set("trace_id", e.trace_id);
      if (!e.tenant.empty()) args.Set("tenant", e.tenant);
      item.Set("args", std::move(args));
    }
    events.Append(std::move(item));
  }
  Json doc = Json::MakeObject();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

void TraceRecorder::Clear() {
  MutexLock lock(rings_mu_);
  for (auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    ring->next = 0;
    ring->wrapped = false;
    ring->overwritten = 0;
    for (auto& e : ring->events) e = TraceEvent{};
  }
}

uint64_t TraceRecorder::dropped() const {
  uint64_t total = 0;
  MutexLock lock(rings_mu_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    total += ring->overwritten;
  }
  return total;
}

// ---------------------------------------------------------------------------
// SpanWatchdog
// ---------------------------------------------------------------------------

SpanWatchdog::SpanWatchdog(TraceRecorder* recorder)
    : SpanWatchdog(recorder, Options()) {}

SpanWatchdog::SpanWatchdog(TraceRecorder* recorder, Options options)
    : recorder_(recorder), options_(options) {
  options_.interval_us = std::max<int64_t>(1000, options_.interval_us);
  options_.threshold_us = std::max<int64_t>(1, options_.threshold_us);
  options_.max_snapshots = std::max<size_t>(1, options_.max_snapshots);
}

SpanWatchdog::~SpanWatchdog() {
  Status s = Stop();  // Stop() on a stopped watchdog is OK; never fails
  (void)s;
}

Status SpanWatchdog::Start() {
  MutexLock lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("span watchdog already running");
  }
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

Status SpanWatchdog::Stop() {
  std::thread to_join;
  {
    MutexLock lock(mu_);
    if (!running_) return Status::OK();
    stop_ = true;
    running_ = false;
    to_join = std::move(thread_);
  }
  cv_.NotifyAll();
  if (to_join.joinable()) to_join.join();
  return Status::OK();
}

bool SpanWatchdog::running() const {
  MutexLock lock(mu_);
  return running_;
}

void SpanWatchdog::Run() {
  while (true) {
    {
      MutexLock lock(mu_);
      int64_t deadline = NowMicros() + options_.interval_us;
      while (!stop_) {
        int64_t now = NowMicros();
        if (now >= deadline) break;
        (void)cv_.WaitForMicros(mu_, deadline - now);
      }
      if (stop_) return;
    }
    ScanOnce();
  }
}

void SpanWatchdog::ScanOnce() {
  // Snapshot first, then update own state: mu_ stays a leaf (never held
  // across the recorder's ring locks or an error-event Record).
  int64_t now = NowMicros();
  std::vector<OpenSpanInfo> open = recorder_->OpenSpans();
  std::vector<SlowSpan> fresh;
  {
    MutexLock lock(mu_);
    std::unordered_set<uint64_t> live;
    live.reserve(open.size());
    for (const OpenSpanInfo& s : open) {
      live.insert(s.token);
      if (now - s.start_us < options_.threshold_us) continue;
      if (!reported_.insert(s.token).second) continue;  // already flagged
      SlowSpan slow;
      slow.name = s.name;
      slow.cat = s.cat;
      slow.tenant = s.tenant;
      slow.trace_id = s.trace_id;
      slow.start_us = s.start_us;
      slow.age_us = now - s.start_us;
      slow.tid = s.tid;
      slow.token = s.token;
      ++flagged_;
      slow_.push_back(slow);
      fresh.push_back(std::move(slow));
    }
    while (slow_.size() > options_.max_snapshots) {
      slow_.erase(slow_.begin());
    }
    // Tokens that closed since the last scan can never re-open; prune so
    // the set tracks the live span population, not history.
    for (auto it = reported_.begin(); it != reported_.end();) {
      it = live.count(*it) ? std::next(it) : reported_.erase(it);
    }
  }
  // Error events outside mu_: Record takes the calling thread's ring lock.
  for (const SlowSpan& s : fresh) {
    std::string detail = s.cat + "/" + s.name + " open " +
                         std::to_string(s.age_us) + "us on tid " +
                         std::to_string(s.tid);
    if (s.trace_id != 0) detail += " trace_id=" + std::to_string(s.trace_id);
    if (!s.tenant.empty()) detail += " tenant=" + s.tenant;
    RecordErrorEvent(*recorder_, "watchdog.slow_op", detail);
  }
}

std::vector<SpanWatchdog::SlowSpan> SpanWatchdog::SlowSpans() const {
  MutexLock lock(mu_);
  return slow_;
}

uint64_t SpanWatchdog::flagged() const {
  MutexLock lock(mu_);
  return flagged_;
}

Json SpanWatchdog::SlowSpansJson() const {
  Json arr = Json::MakeArray();
  for (const SlowSpan& s : SlowSpans()) {
    Json item = Json::MakeObject();
    item.Set("name", s.name);
    item.Set("cat", s.cat);
    if (!s.tenant.empty()) item.Set("tenant", s.tenant);
    item.Set("trace_id", s.trace_id);
    item.Set("start_us", s.start_us);
    item.Set("age_us", s.age_us);
    item.Set("tid", static_cast<uint64_t>(s.tid));
    arr.Append(std::move(item));
  }
  Json doc = Json::MakeObject();
  doc.Set("threshold_us", options_.threshold_us);
  doc.Set("flagged", flagged());
  doc.Set("slow", std::move(arr));
  return doc;
}

}  // namespace dl::obs
