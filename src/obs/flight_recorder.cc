#include "obs/flight_recorder.h"

#include <algorithm>

#include "util/clock.h"

namespace dl::obs {

namespace {

/// Quantile over one interval's bucket deltas, mirroring
/// Histogram::Quantile (linear interpolation inside the owning bucket).
/// `fallback_max` stands in for overflow-bucket hits — the per-interval
/// true max is unknowable from bucket deltas, so the cumulative tracked
/// max is the best available bound.
double DeltaQuantile(const std::vector<double>& bounds,
                     const std::vector<uint64_t>& delta, double q,
                     double fallback_max) {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  for (uint64_t c : delta) total += c;
  if (total == 0) return 0.0;
  double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] == 0) continue;
    if (static_cast<double>(cumulative + delta[i]) >= rank) {
      if (i == bounds.size()) return fallback_max;  // overflow bucket
      double lower = i == 0 ? 0.0 : bounds[i - 1];
      double upper = bounds[i];
      double within = (rank - static_cast<double>(cumulative)) / delta[i];
      return lower + within * (upper - lower);
    }
    cumulative += delta[i];
  }
  return fallback_max;
}

}  // namespace

FlightRecorder::FlightRecorder(MetricsRegistry* registry)
    : FlightRecorder(registry, Options()) {}

FlightRecorder::FlightRecorder(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  options_.interval_us = std::max<int64_t>(1000, options_.interval_us);
  options_.max_samples = std::max<size_t>(2, options_.max_samples);
}

FlightRecorder::~FlightRecorder() {
  Status s = Stop();  // Stop() on a stopped recorder is OK; never fails
  (void)s;
}

void FlightRecorder::WatchCounter(const std::string& name,
                                  const Labels& labels, std::string alias) {
  CounterWatch w;
  w.alias = alias.empty() ? name : std::move(alias);
  w.counter = registry_->GetCounter(name, labels);
  MutexLock lock(mu_);
  counters_.push_back(std::move(w));
}

void FlightRecorder::WatchGauge(const std::string& name, const Labels& labels,
                                std::string alias) {
  GaugeWatch w;
  w.alias = alias.empty() ? name : std::move(alias);
  w.gauge = registry_->GetGauge(name, labels);
  MutexLock lock(mu_);
  gauges_.push_back(std::move(w));
}

void FlightRecorder::WatchHistogram(const std::string& name,
                                    const Labels& labels, std::string alias) {
  HistogramWatch w;
  w.alias = alias.empty() ? name : std::move(alias);
  w.hist = registry_->GetHistogram(name, labels);
  MutexLock lock(mu_);
  histograms_.push_back(std::move(w));
}

Status FlightRecorder::Start() {
  MutexLock lock(mu_);
  if (running_ || stopping_) {
    return Status::FailedPrecondition("flight recorder already running");
  }
  samples_.clear();
  dropped_ = 0;
  stop_ = false;
  running_ = true;
  start_us_ = NowMicros();
  last_us_ = start_us_;
  // Baseline pass: deltas on the first real sample measure from Start(),
  // not from whatever the instruments accumulated before it.
  for (auto& w : counters_) w.prev = w.counter->Value();
  for (auto& w : histograms_) {
    w.prev_count = w.hist->Count();
    w.prev_buckets = w.hist->BucketCounts();
  }
  // Spawned under the lock: Run() blocks on mu_ until Start() returns, and
  // no concurrent Start/Stop can observe a half-initialized thread_.
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

Status FlightRecorder::Stop() {
  std::thread to_join;
  {
    MutexLock lock(mu_);
    if (!running_) return Status::OK();
    if (stopping_) {
      // Another Stop() owns the shutdown; wait until it completes so every
      // Stop() caller returns with the recorder fully stopped.
      while (running_) cv_.Wait(mu_);
      return Status::OK();
    }
    stopping_ = true;
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.NotifyAll();
  if (to_join.joinable()) to_join.join();
  // Final sample after the thread quiesced: the tail of the run (anything
  // since the last tick) makes it into the series.
  SampleOnce();
  {
    MutexLock lock(mu_);
    running_ = false;
    stopping_ = false;
  }
  cv_.NotifyAll();
  return Status::OK();
}

bool FlightRecorder::running() const {
  MutexLock lock(mu_);
  return running_;
}

void FlightRecorder::Run() {
  while (true) {
    {
      MutexLock lock(mu_);
      int64_t deadline = NowMicros() + options_.interval_us;
      while (!stop_) {
        int64_t now = NowMicros();
        if (now >= deadline) break;
        bool notified = cv_.WaitForMicros(mu_, deadline - now);
        (void)notified;  // stop_ is re-checked either way
      }
      if (stop_) return;
    }
    SampleOnce();
  }
}

void FlightRecorder::SampleOnce() {
  // Pull-model gauges (buffer pool occupancy, process bytes-copied) have no
  // reporter thread of their own; refresh them so watches read live values.
  SampleProcessGauges(*registry_);
  MutexLock lock(mu_);
  int64_t now = NowMicros();
  Sample s;
  s.t_us = now - start_us_;
  s.dt_us = std::max<int64_t>(1, now - last_us_);
  last_us_ = now;
  double per_sec_scale = 1e6 / static_cast<double>(s.dt_us);
  for (auto& w : counters_) {
    uint64_t cur = w.counter->Value();
    // Reset() mid-run makes the counter go backwards; clamp to zero
    // rather than emitting a huge unsigned wraparound.
    uint64_t delta = cur >= w.prev ? cur - w.prev : 0;
    w.prev = cur;
    s.values[w.alias] = static_cast<double>(delta);
    s.values[w.alias + "_per_sec"] =
        static_cast<double>(delta) * per_sec_scale;
  }
  for (auto& w : gauges_) {
    s.values[w.alias] = w.gauge->Value();
  }
  for (auto& w : histograms_) {
    uint64_t count = w.hist->Count();
    std::vector<uint64_t> buckets = w.hist->BucketCounts();
    std::vector<uint64_t> delta(buckets.size(), 0);
    for (size_t i = 0; i < buckets.size(); ++i) {
      uint64_t prev = i < w.prev_buckets.size() ? w.prev_buckets[i] : 0;
      delta[i] = buckets[i] >= prev ? buckets[i] - prev : 0;
    }
    uint64_t count_delta = count >= w.prev_count ? count - w.prev_count : 0;
    w.prev_count = count;
    w.prev_buckets = std::move(buckets);
    double max = w.hist->Max();
    s.values[w.alias + "_count"] = static_cast<double>(count_delta);
    s.values[w.alias + "_p50"] =
        DeltaQuantile(w.hist->bounds(), delta, 0.50, max);
    s.values[w.alias + "_p99"] =
        DeltaQuantile(w.hist->bounds(), delta, 0.99, max);
  }
  samples_.push_back(std::move(s));
  while (samples_.size() > options_.max_samples) {
    samples_.erase(samples_.begin());
    ++dropped_;
  }
}

std::vector<FlightRecorder::Sample> FlightRecorder::Samples() const {
  MutexLock lock(mu_);
  return samples_;
}

uint64_t FlightRecorder::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

Json FlightRecorder::TimelineJson() const {
  Json samples = Json::MakeArray();
  for (const Sample& s : Samples()) {
    Json item = Json::MakeObject();
    item.Set("t_us", s.t_us);
    item.Set("dt_us", s.dt_us);
    for (const auto& [k, v] : s.values) item.Set(k, v);
    samples.Append(std::move(item));
  }
  Json doc = Json::MakeObject();
  doc.Set("interval_us", options_.interval_us);
  doc.Set("dropped", dropped());
  doc.Set("samples", std::move(samples));
  return doc;
}

}  // namespace dl::obs
