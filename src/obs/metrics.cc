#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "util/buffer.h"
#include "util/lock_stats.h"

namespace dl::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; past-the-end = overflow.
  size_t idx = std::upper_bound(bounds_.begin(), bounds_.end(), v) -
               bounds_.begin();
  // upper_bound gives the first bound strictly greater than v; a value
  // equal to a bound belongs in that bound's bucket (inclusive upper).
  if (idx > 0 && bounds_[idx - 1] == v) --idx;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  double m = max_.load(std::memory_order_relaxed);
  while (v > m &&
         !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cumulative + counts[i]) >= rank) {
      if (i == bounds_.size()) return Max();  // overflow bucket
      double lower = i == 0 ? 0.0 : bounds_[i - 1];
      double upper = bounds_[i];
      double within =
          (rank - static_cast<double>(cumulative)) / counts[i];
      return lower + within * (upper - lower);
    }
    cumulative += counts[i];
  }
  return Max();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<double> LatencyBucketsUs() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 16'777'216.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::Key(const std::string& name,
                                 const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  for (const auto& [k, v] : sorted) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  MutexLock lock(mu_);
  auto& entry = counters_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = labels;
    entry.metric = std::make_unique<Counter>();
  }
  return entry.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  MutexLock lock(mu_);
  auto& entry = gauges_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = labels;
    entry.metric = std::make_unique<Gauge>();
  }
  return entry.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto& entry = histograms_[Key(name, labels)];
  if (entry.metric == nullptr) {
    entry.name = name;
    entry.labels = labels;
    entry.metric = std::make_unique<Histogram>(std::move(bounds));
  }
  return entry.metric.get();
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [k, e] : counters_) e.metric->Reset();
  for (auto& [k, e] : gauges_) e.metric->Reset();
  for (auto& [k, e] : histograms_) e.metric->Reset();
}

namespace {

Json LabelsJson(const Labels& labels) {
  Json obj = Json::MakeObject();
  for (const auto& [k, v] : labels) obj.Set(k, v);
  return obj;
}

}  // namespace

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [key, e] : counters_) {
    snap.counters.push_back({e.name, e.labels, e.metric->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, e] : gauges_) {
    snap.gauges.push_back({e.name, e.labels, e.metric->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, e] : histograms_) {
    const Histogram& h = *e.metric;
    RegistrySnapshot::HistogramRow row;
    row.name = e.name;
    row.labels = e.labels;
    row.count = h.Count();
    row.sum = h.Sum();
    row.max = h.Max();
    row.p50 = h.Quantile(0.50);
    row.p90 = h.Quantile(0.90);
    row.p99 = h.Quantile(0.99);
    row.bounds = h.bounds();
    row.buckets = h.BucketCounts();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

Json MetricsRegistry::SnapshotJson() const {
  RegistrySnapshot snap = Snapshot();
  Json counters = Json::MakeArray();
  for (const auto& c : snap.counters) {
    Json item = Json::MakeObject();
    item.Set("name", c.name);
    item.Set("labels", LabelsJson(c.labels));
    item.Set("value", c.value);
    counters.Append(std::move(item));
  }
  Json gauges = Json::MakeArray();
  for (const auto& g : snap.gauges) {
    Json item = Json::MakeObject();
    item.Set("name", g.name);
    item.Set("labels", LabelsJson(g.labels));
    item.Set("value", g.value);
    gauges.Append(std::move(item));
  }
  Json histograms = Json::MakeArray();
  for (const auto& h : snap.histograms) {
    Json item = Json::MakeObject();
    item.Set("name", h.name);
    item.Set("labels", LabelsJson(h.labels));
    item.Set("count", h.count);
    item.Set("sum", h.sum);
    item.Set("max", h.max);
    item.Set("p50", h.p50);
    item.Set("p90", h.p90);
    item.Set("p99", h.p99);
    Json bounds = Json::MakeArray();
    for (double b : h.bounds) bounds.Append(b);
    item.Set("bounds", std::move(bounds));
    Json buckets = Json::MakeArray();
    for (uint64_t c : h.buckets) buckets.Append(c);
    item.Set("buckets", std::move(buckets));
    histograms.Append(std::move(item));
  }
  Json snapshot = Json::MakeObject();
  snapshot.Set("counters", std::move(counters));
  snapshot.Set("gauges", std::move(gauges));
  snapshot.Set("histograms", std::move(histograms));
  return snapshot;
}

void SampleProcessGauges(MetricsRegistry& registry) {
  BufferPool& pool = BufferPool::Default();
  registry.GetGauge("buffer_pool.bytes_in_use")
      ->Set(static_cast<double>(pool.bytes_in_use()));
  registry.GetGauge("buffer_pool.acquires")
      ->Set(static_cast<double>(pool.acquires()));
  registry.GetGauge("buffer_pool.retained_bytes")
      ->Set(static_cast<double>(pool.retained_bytes()));
  registry.GetGauge("process.bytes_copied")
      ->Set(static_cast<double>(TotalBytesCopied()));
  SampleLockStats(registry);
}

void SampleLockStats(MetricsRegistry& registry) {
  for (const auto& row : lockstats::Snapshot()) {
    registry.GetGauge("lock.wait_us", {{"lock", row.name}})
        ->Set(static_cast<double>(row.wait_us_total));
    registry.GetGauge("lock.contentions", {{"lock", row.name}})
        ->Set(static_cast<double>(row.contentions));
  }
  registry.GetGauge("lock.wait_us")
      ->Set(static_cast<double>(lockstats::TotalWaitMicros()));
  registry.GetGauge("lock.contentions")
      ->Set(static_cast<double>(lockstats::TotalContentions()));
}

}  // namespace dl::obs
