#include "obs/context.h"

#include <atomic>
#include <utility>

namespace dl::obs {

namespace {

std::atomic<uint64_t> g_next_trace_id{1};

Context& ThreadContext() {
  thread_local Context context;
  return context;
}

}  // namespace

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

Context Context::ForJob(std::string tenant, std::string job) {
  Context context;
  context.trace_id = NewTraceId();
  context.tenant = std::move(tenant);
  context.job = std::move(job);
  return context;
}

const Context& CurrentContext() { return ThreadContext(); }

ContextScope::ContextScope(const Context& context)
    : previous_(ThreadContext()) {
  ThreadContext() = context;
}

ContextScope::~ContextScope() { ThreadContext() = std::move(previous_); }

}  // namespace dl::obs
