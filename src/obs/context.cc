#include "obs/context.h"

#include <atomic>
#include <utility>

#include "obs/metrics.h"
#include "util/buffer.h"
#include "util/clock.h"

namespace dl::obs {

namespace {

std::atomic<uint64_t> g_next_trace_id{1};

Context& ThreadContext() {
  thread_local Context context;
  return context;
}

}  // namespace

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

ResourceMeter::ResourceMeter(std::string tenant, std::string job)
    : tenant_(std::move(tenant)), job_(std::move(job)) {
  auto& registry = MetricsRegistry::Global();
  Labels labels = {{"job", job_}, {"tenant", tenant_}};
  job_cpu_us_ = registry.GetCounter("job.cpu_us", labels);
  job_bytes_read_ = registry.GetCounter("job.bytes_read", labels);
  job_bytes_copied_ = registry.GetCounter("job.bytes_copied", labels);
  agg_cpu_us_ = registry.GetCounter("job.cpu_us");
  agg_bytes_read_ = registry.GetCounter("job.bytes_read");
  agg_bytes_copied_ = registry.GetCounter("job.bytes_copied");
}

void ResourceMeter::ChargeCpuMicros(int64_t us) {
  if (us <= 0) return;
  uint64_t n = static_cast<uint64_t>(us);
  cpu_us_.fetch_add(n, std::memory_order_relaxed);
  job_cpu_us_->Add(n);
  agg_cpu_us_->Add(n);
}

void ResourceMeter::ChargeBytesRead(uint64_t n) {
  if (n == 0) return;
  bytes_read_.fetch_add(n, std::memory_order_relaxed);
  job_bytes_read_->Add(n);
  agg_bytes_read_->Add(n);
}

void ResourceMeter::ChargeBytesCopied(uint64_t n) {
  if (n == 0) return;
  bytes_copied_.fetch_add(n, std::memory_order_relaxed);
  job_bytes_copied_->Add(n);
  agg_bytes_copied_->Add(n);
}

Context Context::ForJob(std::string tenant, std::string job) {
  Context context;
  context.trace_id = NewTraceId();
  context.tenant = std::move(tenant);
  context.job = std::move(job);
  context.meter =
      std::make_shared<ResourceMeter>(context.tenant, context.job);
  return context;
}

const Context& CurrentContext() { return ThreadContext(); }

ContextScope::ContextScope(const Context& context)
    : previous_(ThreadContext()) {
  ThreadContext() = context;
  // Meter the thread only at the boundary where this meter takes over:
  // re-installing the meter already active (span nesting inside one job)
  // must not charge the interval twice.
  if (context.meter != nullptr &&
      context.meter.get() != previous_.meter.get()) {
    meter_ = context.meter.get();
    cpu_start_us_ = ThreadCpuMicros();
    copied_start_ = ThreadBytesCopied();
  }
}

ContextScope::~ContextScope() {
  if (meter_ != nullptr) {
    // The thread's context still holds a shared_ptr to meter_ until the
    // restore below, so the raw pointer is alive here.
    meter_->ChargeCpuMicros(ThreadCpuMicros() - cpu_start_us_);
    meter_->ChargeBytesCopied(ThreadBytesCopied() - copied_start_);
  }
  ThreadContext() = std::move(previous_);
}

}  // namespace dl::obs
