#ifndef DEEPLAKE_OBS_EXPORT_H_
#define DEEPLAKE_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dl::obs {

/// Standard exporters over the observability layer (DESIGN.md §7): the
/// Prometheus text exposition format for instruments, and a JSONL event log
/// for spans/errors. Both are pure functions over point-in-time snapshots —
/// safe to call from any thread, including while instruments are hot.

/// Renders every instrument in `registry` in Prometheus text exposition
/// format (version 0.0.4). Naming convention (DESIGN.md §7): dots in
/// registry names become underscores (`storage.op_us` → `storage_op_us`),
/// counters gain the conventional `_total` suffix, histograms expand to
/// cumulative `<name>_bucket{le="..."}` series plus `<name>_sum` /
/// `<name>_count`. Label values are escaped per the exposition spec
/// (backslash, double-quote, newline).
std::string PrometheusText(const MetricsRegistry& registry);

/// Structured JSONL event log: one JSON object per line, one line per
/// recorded span, oldest first:
///
///   {"type":"span","name":"loader.fetch","cat":"loader",
///    "ts_us":123,"dur_us":45,"tid":0}
///
/// Spans recorded in category "error" (see RecordErrorEvent) are emitted
/// with "type":"error". Returns an empty string when nothing was recorded.
std::string EventsJsonl(const TraceRecorder& recorder);

/// Records an instant error event (category "error", zero duration) so
/// failures land on the same timeline as spans and surface in EventsJsonl
/// as "type":"error" lines. No-op while the recorder is disabled, like
/// every other span site.
void RecordErrorEvent(TraceRecorder& recorder, const std::string& name,
                      const std::string& detail);

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_EXPORT_H_
