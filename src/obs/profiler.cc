// Sampling CPU profiler. This file is the only place in the tree allowed
// to touch sigaction / setitimer / backtrace (check_source.py rule
// `profiler-syscall`), for the same reason raw sockets are confined to
// debug_server.cc: signal plumbing is easy to get subtly wrong, so every
// use lives behind one audited implementation.
//
// Signal-safety invariants (see the header and DESIGN.md §7):
//   1. The handler touches only the process-lifetime Arena (never freed)
//      through a raw pointer published in an atomic — no allocation, no
//      locks, no C++ statics with guarded initialization.
//   2. The SIGPROF disposition, once installed, is never restored: Stop()
//      disarms the timer and clears `collecting`. A pending SIGPROF after
//      an uninstall would hit the default disposition, which terminates
//      the process.
//   3. backtrace() is called once in Start() before the timer is armed:
//      its first invocation may dlopen libgcc, which must not happen
//      inside a handler.

#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "util/clock.h"
#include "util/macros.h"

namespace dl::obs {

namespace {

constexpr uint32_t kSlotEmpty = 0;
constexpr uint32_t kSlotWriting = 1;
constexpr uint32_t kSlotReady = 2;

constexpr int kMaxDepth = 64;
constexpr size_t kMaxStacks = 2048;
constexpr size_t kMaxProbes = 64;
// backtrace() from inside the handler sees [SigProfHandler, signal
// trampoline, <interrupted frame>, ...]; drop the first two.
constexpr int kSkipFrames = 2;

struct StackSlot {
  std::atomic<uint32_t> state{kSlotEmpty};
  std::atomic<uint64_t> count{0};
  uint64_t hash = 0;
  uint32_t depth = 0;
  void* pcs[kMaxDepth];
};

// Process-lifetime profiler state. Leaked by design (invariant 1): the
// handler stays installed for the process lifetime and must never chase a
// dangling pointer, no matter when the last CpuProfiler was destroyed.
struct Arena {
  std::atomic<bool> collecting{false};
  std::atomic<int> in_handler{0};
  std::atomic<uint64_t> samples{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<int> max_depth{48};
  std::atomic<bool> handler_installed{false};
  std::atomic<bool> busy{false};  // one active profiler per process
  StackSlot slots[kMaxStacks];
};

// Published for the handler before the timer is armed; the handler never
// runs C++ static initialization (invariant 1).
std::atomic<Arena*> g_arena{nullptr};

Arena* GetArena() {
  static Arena* a = new Arena();
  return a;
}

DL_SIGNAL_SAFE uint64_t HashStack(void* const* pcs, int depth) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (int i = 0; i < depth; ++i) {
    uint64_t v = reinterpret_cast<uint64_t>(pcs[i]);
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h == 0 ? 1 : h;
}

extern "C" DL_SIGNAL_SAFE void SigProfHandler(int /*signum*/) {
  Arena* a = g_arena.load(std::memory_order_acquire);
  if (a == nullptr || !a->collecting.load(std::memory_order_acquire)) return;
  a->in_handler.fetch_add(1, std::memory_order_acq_rel);
  int saved_errno = errno;

  void* frames[kMaxDepth + kSkipFrames];
  int want = a->max_depth.load(std::memory_order_relaxed) + kSkipFrames;
  int got = backtrace(frames, want);
  int depth = got - kSkipFrames;
  if (depth > 0) {
    void* const* pcs = frames + kSkipFrames;
    a->samples.fetch_add(1, std::memory_order_relaxed);
    uint64_t hash = HashStack(pcs, depth);
    size_t idx = hash % kMaxStacks;
    bool stored = false;
    for (size_t probe = 0; probe < kMaxProbes; ++probe) {
      StackSlot& slot = a->slots[idx];
      uint32_t state = slot.state.load(std::memory_order_acquire);
      if (state == kSlotReady) {
        if (slot.hash == hash &&
            slot.depth == static_cast<uint32_t>(depth) &&
            std::memcmp(slot.pcs, pcs, sizeof(void*) * depth) == 0) {
          slot.count.fetch_add(1, std::memory_order_relaxed);
          stored = true;
          break;
        }
      } else if (state == kSlotEmpty) {
        uint32_t expected = kSlotEmpty;
        if (slot.state.compare_exchange_strong(expected, kSlotWriting,
                                               std::memory_order_acq_rel)) {
          slot.hash = hash;
          slot.depth = static_cast<uint32_t>(depth);
          std::memcpy(slot.pcs, pcs, sizeof(void*) * depth);
          slot.count.store(1, std::memory_order_relaxed);
          slot.state.store(kSlotReady, std::memory_order_release);
          stored = true;
          break;
        }
      }
      // kSlotWriting, a hash mismatch, or a lost CAS: probe onward.
      idx = (idx + 1) % kMaxStacks;
    }
    if (!stored) a->dropped.fetch_add(1, std::memory_order_relaxed);
  }

  errno = saved_errno;
  a->in_handler.fetch_sub(1, std::memory_order_acq_rel);
}

/// Best-effort symbol for one pc. `pc` is a return address, so look up
/// pc-1 to land inside the call instruction's function.
std::string SymbolForPc(void* pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  void* lookup = static_cast<char*>(pc) - 1;
  std::string out;
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    out = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%p", pc);
    out = buf;
  }
  // ';' separates frames and ' ' separates stack from count in the folded
  // format; neither may appear inside a frame name.
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  return out;
}

std::string RenderFolded(const Arena& a) {
  // Symbolize each distinct pc once, then merge stacks that fold to the
  // same symbolized key (different pcs in one function, e.g. two call
  // sites, merge here).
  std::map<void*, std::string> symbols;
  std::map<std::string, uint64_t> folded;
  for (const StackSlot& slot : a.slots) {
    if (slot.state.load(std::memory_order_acquire) != kSlotReady) continue;
    uint64_t count = slot.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    std::string line;
    // Slots store leaf-first; folded format is root-first.
    for (int i = static_cast<int>(slot.depth) - 1; i >= 0; --i) {
      auto [it, inserted] = symbols.try_emplace(slot.pcs[i]);
      if (inserted) it->second = SymbolForPc(slot.pcs[i]);
      if (!line.empty()) line += ';';
      line += it->second;
    }
    if (!line.empty()) folded[line] += count;
  }
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace

CpuProfiler::CpuProfiler() : CpuProfiler(Options{}) {}

CpuProfiler::CpuProfiler(Options options) : options_(options) {}

CpuProfiler::~CpuProfiler() { (void)Stop(); }

bool CpuProfiler::SupportedInThisBuild() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return false;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
}

Status CpuProfiler::Start() {
  if (!SupportedInThisBuild()) {
    return Status::NotImplemented(
        "signal-based cpu profiling is disabled under TSan/ASan");
  }
  if (running_) {
    return Status::FailedPrecondition("this profiler is already running");
  }
  Arena* a = GetArena();
  bool expected = false;
  if (!a->busy.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition(
        "another cpu profiler is active in this process");
  }
  owns_arena_ = true;

  for (StackSlot& slot : a->slots) {
    slot.state.store(kSlotEmpty, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
  }
  a->samples.store(0, std::memory_order_relaxed);
  a->dropped.store(0, std::memory_order_relaxed);
  a->max_depth.store(std::clamp(options_.max_depth, 1, kMaxDepth),
                     std::memory_order_relaxed);

  // Invariant 3: pre-warm backtrace outside signal context.
  void* warm[4];
  (void)backtrace(warm, 4);

  g_arena.store(a, std::memory_order_release);
  if (!a->handler_installed.exchange(true)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SigProfHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      a->handler_installed.store(false);
      a->busy.store(false);
      owns_arena_ = false;
      return Status::IOError("sigaction(SIGPROF) failed");
    }
  }

  a->collecting.store(true, std::memory_order_release);
  int hz = std::clamp(options_.sample_hz, 1, 1000);
  int64_t period_us = 1'000'000 / hz;
  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  timer.it_interval.tv_sec = period_us / 1'000'000;
  timer.it_interval.tv_usec = period_us % 1'000'000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    a->collecting.store(false, std::memory_order_release);
    a->busy.store(false);
    owns_arena_ = false;
    return Status::IOError("setitimer(ITIMER_PROF) failed");
  }

  folded_.clear();
  running_ = true;
  return Status::OK();
}

Status CpuProfiler::Stop() {
  if (!running_) return Status::OK();
  Arena* a = GetArena();

  itimerval disarm;
  std::memset(&disarm, 0, sizeof(disarm));
  (void)setitimer(ITIMER_PROF, &disarm, nullptr);
  // Invariant 2: the handler stays installed; this gate turns it into a
  // no-op for any SIGPROF still in flight.
  a->collecting.store(false, std::memory_order_release);

  // Wait for in-flight handler invocations to drain before reading slots
  // non-atomically during symbolization (bounded: ~200ms worst case).
  for (int i = 0; i < 2000; ++i) {
    if (a->in_handler.load(std::memory_order_acquire) == 0) break;
    SleepMicros(100);
  }

  folded_ = RenderFolded(*a);
  samples_stopped_ = a->samples.load(std::memory_order_relaxed);
  dropped_stopped_ = a->dropped.load(std::memory_order_relaxed);
  running_ = false;
  owns_arena_ = false;
  a->busy.store(false);
  return Status::OK();
}

uint64_t CpuProfiler::samples() const {
  if (!running_) return samples_stopped_;
  return GetArena()->samples.load(std::memory_order_relaxed);
}

uint64_t CpuProfiler::dropped() const {
  if (!running_) return dropped_stopped_;
  return GetArena()->dropped.load(std::memory_order_relaxed);
}

std::string CpuProfiler::FoldedStacks() const {
  if (running_) return RenderFolded(*GetArena());
  return folded_;
}

Result<std::string> CollectCpuProfile(double seconds,
                                      const CpuProfiler::Options& options) {
  CpuProfiler profiler(options);
  DL_RETURN_IF_ERROR(profiler.Start());
  SleepMicros(static_cast<int64_t>(seconds * 1e6));
  DL_RETURN_IF_ERROR(profiler.Stop());
  return profiler.FoldedStacks();
}

}  // namespace dl::obs
