#ifndef DEEPLAKE_OBS_CONTEXT_H_
#define DEEPLAKE_OBS_CONTEXT_H_

#include <cstdint>
#include <string>

namespace dl::obs {

/// Per-operation trace context: the identity of the job an operation is
/// doing work for. A Context is created at an operation root (a query, an
/// epoch, an ingest run), carried by value in `DataloaderOptions` /
/// `QueryOptions`, and installed on each participating thread with a
/// `ContextScope`. Every span recorded while a scope is active — including
/// spans deep inside `InstrumentedStore` — inherits the context's trace id
/// and tenant label, so one loader→storage call chain shares one trace id
/// end-to-end (DESIGN.md §7).
///
/// Contexts are plain values: copying is two string copies, and an empty
/// context (the default) is free to install.
struct Context {
  /// Non-zero groups spans into one logical operation. 0 = no context.
  uint64_t trace_id = 0;
  /// Owning tenant/job labels, attached verbatim to spans. Keep these low
  /// cardinality — they name a job, not a row.
  std::string tenant;
  std::string job;
  /// Absolute steady-clock deadline (NowMicros scale); 0 = none. The
  /// context layer only carries it — enforcement belongs to call sites.
  int64_t deadline_us = 0;

  bool empty() const {
    return trace_id == 0 && tenant.empty() && job.empty() && deadline_us == 0;
  }

  /// True once `deadline_us` is set and in the past.
  bool Expired(int64_t now_us) const {
    return deadline_us != 0 && now_us > deadline_us;
  }

  /// A fresh context with a process-unique trace id.
  static Context ForJob(std::string tenant, std::string job = "");
};

/// Process-unique, monotonically increasing trace id (never 0).
uint64_t NewTraceId();

/// The context installed on the calling thread (empty when none is).
const Context& CurrentContext();

/// RAII installer: sets the calling thread's context for the scope's
/// lifetime and restores the previous one on exit. Scopes nest; an empty
/// context installs cleanly (spans then record with no trace id), so call
/// sites never need to special-case "no context configured".
class ContextScope {
 public:
  explicit ContextScope(const Context& context);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  Context previous_;
};

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_CONTEXT_H_
