#ifndef DEEPLAKE_OBS_CONTEXT_H_
#define DEEPLAKE_OBS_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace dl::obs {

class Counter;

/// Per-job resource account (DESIGN.md §7). A meter is attached to a
/// Context by `ForJob` and charged from two places:
///
///   - `ContextScope` charges thread-CPU-time (CLOCK_THREAD_CPUTIME_ID
///     delta) and bytes-copied (ThreadBytesCopied delta) when the scope
///     that *installed* the meter exits — span boundaries, so a worker
///     thread's whole ProcessUnit / Next / RunQuery is attributed;
///   - `InstrumentedStore` charges bytes read on each successful
///     Get/GetRange to the meter of the context installed on the calling
///     thread.
///
/// Every charge lands twice: on the meter's own atomics (cheap to read in
/// tests and /resourcez), and on `job.cpu_us` / `job.bytes_read` /
/// `job.bytes_copied` counters in the global registry — once labeled
/// {job, tenant} and once unlabeled as the process-wide aggregate the
/// flight recorder watches. Meters are shared_ptr-owned by the contexts
/// that carry them; charging is lock-free.
class ResourceMeter {
 public:
  ResourceMeter(std::string tenant, std::string job);

  ResourceMeter(const ResourceMeter&) = delete;
  ResourceMeter& operator=(const ResourceMeter&) = delete;

  void ChargeCpuMicros(int64_t us);
  void ChargeBytesRead(uint64_t n);
  void ChargeBytesCopied(uint64_t n);

  uint64_t cpu_micros() const {
    return cpu_us_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_copied() const {
    return bytes_copied_.load(std::memory_order_relaxed);
  }

  const std::string& tenant() const { return tenant_; }
  const std::string& job() const { return job_; }

 private:
  std::string tenant_;
  std::string job_;
  std::atomic<uint64_t> cpu_us_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_copied_{0};
  // Global-registry instruments, resolved once at construction. Labeled
  // rows feed /resourcez; unlabeled rows are the process aggregates.
  Counter* job_cpu_us_;
  Counter* job_bytes_read_;
  Counter* job_bytes_copied_;
  Counter* agg_cpu_us_;
  Counter* agg_bytes_read_;
  Counter* agg_bytes_copied_;
};

/// Per-operation trace context: the identity of the job an operation is
/// doing work for. A Context is created at an operation root (a query, an
/// epoch, an ingest run), carried by value in `DataloaderOptions` /
/// `QueryOptions`, and installed on each participating thread with a
/// `ContextScope`. Every span recorded while a scope is active — including
/// spans deep inside `InstrumentedStore` — inherits the context's trace id
/// and tenant label, so one loader→storage call chain shares one trace id
/// end-to-end (DESIGN.md §7).
///
/// Contexts are plain values: copying is two string copies, and an empty
/// context (the default) is free to install.
struct Context {
  /// Non-zero groups spans into one logical operation. 0 = no context.
  uint64_t trace_id = 0;
  /// Owning tenant/job labels, attached verbatim to spans. Keep these low
  /// cardinality — they name a job, not a row.
  std::string tenant;
  std::string job;
  /// Absolute steady-clock deadline (NowMicros scale); 0 = none. The
  /// context layer only carries it — enforcement belongs to call sites.
  int64_t deadline_us = 0;
  /// Resource account charged while this context is installed (nullptr =
  /// unmetered). Shared: copies of the context charge the same meter.
  std::shared_ptr<ResourceMeter> meter;

  bool empty() const {
    return trace_id == 0 && tenant.empty() && job.empty() &&
           deadline_us == 0 && meter == nullptr;
  }

  /// True once `deadline_us` is set and in the past.
  bool Expired(int64_t now_us) const {
    return deadline_us != 0 && now_us > deadline_us;
  }

  /// A fresh context with a process-unique trace id and an attached
  /// ResourceMeter, so the job's CPU/bytes are attributed from the start.
  static Context ForJob(std::string tenant, std::string job = "");
};

/// Process-unique, monotonically increasing trace id (never 0).
uint64_t NewTraceId();

/// The context installed on the calling thread (empty when none is).
const Context& CurrentContext();

/// RAII installer: sets the calling thread's context for the scope's
/// lifetime and restores the previous one on exit. Scopes nest; an empty
/// context installs cleanly (spans then record with no trace id), so call
/// sites never need to special-case "no context configured".
/// A scope whose context carries a ResourceMeter also meters the thread:
/// on entry it snapshots thread CPU time and thread bytes-copied, and on
/// exit charges the deltas to the meter. Nested scopes installing the
/// *same* meter measure only at the outermost level (no double charge);
/// a nested scope installing a different meter hands the interval over.
class ContextScope {
 public:
  explicit ContextScope(const Context& context);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  Context previous_;
  ResourceMeter* meter_ = nullptr;  // non-null: charge deltas on exit
  int64_t cpu_start_us_ = 0;
  uint64_t copied_start_ = 0;
};

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_CONTEXT_H_
