#ifndef DEEPLAKE_OBS_DEBUG_SERVER_H_
#define DEEPLAKE_OBS_DEBUG_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dl::obs {

/// A parsed HTTP response, as returned by HttpGet.
struct HttpResponse {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Minimal blocking HTTP/1.1 GET client for loopback scrapes: `dlstat`,
/// `check_prom_text.sh --live` and the tests use it so nothing outside
/// src/obs/debug_server.cc touches raw sockets (check_source `raw-socket`
/// rule). `timeout_ms` bounds connect, send and the full body read.
Result<HttpResponse> HttpGet(const std::string& host, int port,
                             const std::string& path,
                             int64_t timeout_ms = 2000);

/// Sends `raw_request` verbatim and returns the raw response bytes (status
/// line, headers, body). Exists for protocol-level tests — e.g. asserting
/// the 400 path on a malformed request — that must not hand-roll sockets.
Result<std::string> HttpRawRequest(const std::string& host, int port,
                                   const std::string& raw_request,
                                   int64_t timeout_ms = 2000);

/// Embedded live-telemetry HTTP/1.1 server (DESIGN.md §7): one listener
/// thread (poll-based, so Stop() interrupts an idle accept within ~100ms)
/// plus a bounded worker pool serving GET requests, loopback-bound by
/// default. Endpoints:
///
///   /healthz   liveness probe ("ok")
///   /metrics   Prometheus text 0.0.4 (obs::PrometheusText over the
///              registry, process gauges refreshed first)
///   /statusz   process/build/server summary JSON + optional dataset
///              section from SetStatusProvider
///   /tracez    recent completed spans + currently-open spans + the
///              watchdog's slow-span snapshots
///   /flightz   FlightRecorder timeline JSON from SetFlightzProvider
///   /lockz     lock-contention stats (util/lock_stats) ranked by total
///              wait, with per-lock log2 wait histograms
///   /resourcez per-job CPU/bytes usage grouped from the job.* counters
///              (obs::ResourceMeter) + process totals
///   /pprof/profile?seconds=N
///              runs the sampling CPU profiler for N wall-seconds and
///              returns folded stacks (scripts/flamegraph.py input);
///              501 under sanitizer builds, 503 while another profiler
///              owns the process-wide timer
///
/// Responses are Connection: close (one request per connection — scrape
/// traffic, not serving traffic). Requests beyond `max_inflight` get 503,
/// so a scrape storm cannot pile threads onto a training process. The
/// server owns a SpanWatchdog (enabled via options) whose snapshots feed
/// /tracez. This is the operational surface ROADMAP item 1's `dlserverd`
/// grows from.
class DebugServer {
 public:
  struct Options {
    /// Loopback by default: the debug surface is operator-facing, not
    /// public. Bind 0.0.0.0 explicitly to expose it.
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back via port().
    int port = 0;
    size_t num_workers = 2;
    /// Concurrent requests beyond this are rejected with 503.
    size_t max_inflight = 8;
    /// Read/write timeout applied per connection.
    int64_t io_timeout_ms = 2000;
    /// Start a SpanWatchdog with the server (snapshots appear in /tracez
    /// and the error-event stream).
    bool enable_watchdog = true;
    SpanWatchdog::Options watchdog;
  };

  /// Custom endpoint handler; `path` is the request path including query.
  using Handler = std::function<HttpResponse(const std::string& path)>;

  DebugServer(MetricsRegistry* registry, TraceRecorder* recorder);
  DebugServer(MetricsRegistry* registry, TraceRecorder* recorder,
              Options options);
  ~DebugServer();  // stops if running

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Binds, listens and spawns the listener + workers. Bind/listen
  /// failures (port in use, bad address) surface as a Status — callers
  /// decide whether a dead debug surface is fatal.
  Status Start() DL_EXCLUDES(mu_);

  /// Stops accepting, drains in-flight requests (their responses complete)
  /// and joins every thread. Idempotent.
  Status Stop() DL_EXCLUDES(mu_);

  bool running() const DL_EXCLUDES(mu_);

  /// The bound port (resolves ephemeral binds); 0 before Start().
  int port() const DL_EXCLUDES(mu_);

  /// /statusz "dataset" section provider (called per request; must be
  /// thread-safe). Register before Start().
  void SetStatusProvider(std::function<Json()> provider) DL_EXCLUDES(mu_);

  /// /flightz body provider (a FlightRecorder's TimelineJson, typically).
  /// Register before Start().
  void SetFlightzProvider(std::function<Json()> provider) DL_EXCLUDES(mu_);

  /// Registers a custom endpoint (exact path match, before query). Built-in
  /// paths cannot be overridden. Register before Start().
  void AddHandler(const std::string& path, Handler handler) DL_EXCLUDES(mu_);

  /// The server's watchdog (nullptr when options.enable_watchdog is off).
  SpanWatchdog* watchdog() { return watchdog_.get(); }

  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  uint64_t requests_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Route(const std::string& path) DL_EXCLUDES(mu_);

  HttpResponse ServeMetrics();
  HttpResponse ServeStatusz() DL_EXCLUDES(mu_);
  HttpResponse ServeTracez();
  HttpResponse ServeFlightz() DL_EXCLUDES(mu_);
  HttpResponse ServePprofProfile(const std::string& path);
  HttpResponse ServeLockz();
  HttpResponse ServeResourcez();

  MetricsRegistry* registry_;
  TraceRecorder* recorder_;
  Options options_;

  // Guards lifecycle state and the handler/provider maps. Never held while
  // running a handler or doing socket I/O; ordered before nothing (leaf).
  mutable Mutex mu_{"obs.debug_server.mu"};
  bool running_ DL_GUARDED_BY(mu_) = false;
  int listen_fd_ DL_GUARDED_BY(mu_) = -1;
  int bound_port_ DL_GUARDED_BY(mu_) = 0;
  int64_t started_us_ DL_GUARDED_BY(mu_) = 0;
  std::thread listener_ DL_GUARDED_BY(mu_);
  std::map<std::string, Handler> handlers_ DL_GUARDED_BY(mu_);
  std::function<Json()> status_provider_ DL_GUARDED_BY(mu_);
  std::function<Json()> flightz_provider_ DL_GUARDED_BY(mu_);

  std::unique_ptr<ThreadPool> pool_;  // created in Start, reset in Stop
  std::unique_ptr<SpanWatchdog> watchdog_;

  std::atomic<bool> stop_{false};
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_DEBUG_SERVER_H_
