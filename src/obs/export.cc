#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace dl::obs {

namespace {

/// Prometheus metric/label names allow [a-zA-Z_:][a-zA-Z0-9_:]*; registry
/// names use dots, which map to underscores. Anything else degrades to '_'.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out.empty() ? "_" : out;
}

/// Escapes a label value per the exposition format: backslash, quote and
/// newline are the three characters the spec requires escaping.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string LabelBlock(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizeName(k);
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Labels plus one extra pair (the histogram `le` bucket label).
std::string LabelBlockWith(const Labels& labels, const std::string& key,
                           const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return LabelBlock(all);
}

std::string NumberText(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string BoundText(double b) {
  // Integral bounds print without an exponent so `le` values stay readable.
  if (b == static_cast<double>(static_cast<int64_t>(b))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(b));
    return buf;
  }
  return NumberText(b);
}

void TypeLine(std::string& out, const std::string& prom_name,
              const char* type, std::string* last_typed) {
  // One # TYPE line per metric family, before its first sample, even when
  // several label sets share the name.
  if (*last_typed == prom_name) return;
  *last_typed = prom_name;
  out += "# TYPE ";
  out += prom_name;
  out += " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  RegistrySnapshot snap = registry.Snapshot();
  std::string out;
  std::string last_typed;

  for (const auto& c : snap.counters) {
    std::string prom_name = SanitizeName(c.name) + "_total";
    TypeLine(out, prom_name, "counter", &last_typed);
    out += prom_name + LabelBlock(c.labels) + " " +
           std::to_string(c.value) + "\n";
  }
  last_typed.clear();
  for (const auto& g : snap.gauges) {
    std::string prom_name = SanitizeName(g.name);
    TypeLine(out, prom_name, "gauge", &last_typed);
    out += prom_name + LabelBlock(g.labels) + " " + NumberText(g.value) +
           "\n";
  }
  last_typed.clear();
  for (const auto& h : snap.histograms) {
    std::string prom_name = SanitizeName(h.name);
    TypeLine(out, prom_name, "histogram", &last_typed);
    // Exposition buckets are cumulative; the registry's are per-bucket.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out += prom_name + "_bucket" +
             LabelBlockWith(h.labels, "le", BoundText(h.bounds[i])) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += prom_name + "_bucket" + LabelBlockWith(h.labels, "le", "+Inf") +
           " " + std::to_string(h.count) + "\n";
    out += prom_name + "_sum" + LabelBlock(h.labels) + " " +
           NumberText(h.sum) + "\n";
    out += prom_name + "_count" + LabelBlock(h.labels) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

std::string EventsJsonl(const TraceRecorder& recorder) {
  std::string out;
  for (const TraceEvent& e : recorder.Events()) {
    Json line = Json::MakeObject();
    line.Set("type", e.cat == "error" ? "error" : "span");
    line.Set("name", e.name);
    line.Set("cat", e.cat);
    line.Set("ts_us", e.ts_us);
    line.Set("dur_us", e.dur_us);
    line.Set("tid", static_cast<uint64_t>(e.tid));
    if (e.trace_id != 0) line.Set("trace_id", e.trace_id);
    if (!e.tenant.empty()) line.Set("tenant", e.tenant);
    out += line.Dump();
    out += "\n";
  }
  return out;
}

void RecordErrorEvent(TraceRecorder& recorder, const std::string& name,
                      const std::string& detail) {
  if (!recorder.enabled()) return;
  std::string full = detail.empty() ? name : name + ": " + detail;
  recorder.Record(std::move(full), "error", NowMicros(), 0);
}

}  // namespace dl::obs
