#ifndef DEEPLAKE_OBS_METRICS_H_
#define DEEPLAKE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/clock.h"
#include "util/json.h"
#include "util/thread_annotations.h"

namespace dl::obs {

/// Metric labels: (key, value) pairs. Order-insensitive — the registry
/// canonicalizes them, so {{"op","get"},{"store","s3"}} and the reverse name
/// the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (requests, bytes, errors). Lock-free.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (utilization, queue depth). Add/Sub
/// support up-down usage (in-flight request tracking).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  void Sub(double d) { Add(-d); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-boundary histogram with an atomic fast path. `bounds` are strictly
/// increasing bucket upper limits; one implicit overflow bucket catches
/// everything above the last bound. Observe() is lock-free; readouts
/// (Count/Sum/Quantile) are racy-but-monotone snapshots — fine for metrics,
/// not for invariants.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  /// Convenience for latency instruments: records `NowMicros() - start_us`.
  void ObserveSinceMicros(int64_t start_us) {
    Observe(static_cast<double>(NowMicros() - start_us));
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }

  /// Value at quantile q in [0, 1], linearly interpolated inside the
  /// owning bucket (the standard fixed-bucket estimator). Observations in
  /// the overflow bucket report the tracked max. Returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  // unique_ptr because std::atomic is immovable and the registry stores
  // histograms in movable containers before pinning.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> max_{0};
};

/// Default latency bucket boundaries in microseconds: powers of two from
/// 1µs to ~17s (25 buckets). Covers everything from an L2 miss to a very
/// slow cross-region request with ≤2x quantile error.
std::vector<double> LatencyBucketsUs();

/// Point-in-time copy of every instrument in a registry, in canonical
/// (name, sorted-labels) order. The structured form behind SnapshotJson()
/// and the exporters in obs/export.h; rows own their strings, so a snapshot
/// stays valid however long the caller holds it.
struct RegistrySnapshot {
  struct CounterRow {
    std::string name;
    Labels labels;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    Labels labels;
    double value = 0;
  };
  struct HistogramRow {
    std::string name;
    Labels labels;
    uint64_t count = 0;
    double sum = 0;
    double max = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// Process-wide registry of named, labeled instruments.
///
/// Naming scheme (see DESIGN.md §7): dot-separated `<subsystem>.<what>[_us]`
/// — e.g. `storage.op_us{op=get,store=sim:local(memory)}`,
/// `loader.decode_us`, `sim.gpu.utilization{gpu=gpu0}`. The `_us` suffix
/// marks microsecond latency histograms.
///
/// Get* returns a stable pointer, creating the instrument on first use;
/// callers cache it and hit only the atomic on the hot path. Instruments
/// live for the registry's lifetime; Reset() zeroes values but never
/// invalidates handles.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem reports into. Tests that
  /// assert exact values construct their own local registry instead.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {})
      DL_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const Labels& labels = {})
      DL_EXCLUDES(mu_);
  /// `bounds` is honored only on first creation of (name, labels).
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> bounds = LatencyBucketsUs())
      DL_EXCLUDES(mu_);

  /// Zeroes every instrument (handles stay valid). Benches call this after
  /// setup so reports cover only the measured phase.
  void Reset() DL_EXCLUDES(mu_);

  /// Structured point-in-time copy of every instrument (exporters and the
  /// flight recorder consume this; SnapshotJson() is built on top of it).
  RegistrySnapshot Snapshot() const DL_EXCLUDES(mu_);

  /// Machine-readable dump:
  ///   {"counters": [{"name","labels","value"}...],
  ///    "gauges":   [{"name","labels","value"}...],
  ///    "histograms":[{"name","labels","count","sum","max",
  ///                   "p50","p90","p99","bounds":[...],"buckets":[...]}]}
  Json SnapshotJson() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };

  static std::string Key(const std::string& name, const Labels& labels);

  // Leaf lock (DESIGN.md §8): no other lock is ever acquired under it.
  // Instrument *values* are atomics — mu_ guards only the maps, so Get*
  // hits it once per call site (callers cache the returned pointer).
  mutable Mutex mu_{"obs.metrics.mu"};
  std::map<std::string, Entry<Counter>> counters_ DL_GUARDED_BY(mu_);
  std::map<std::string, Entry<Gauge>> gauges_ DL_GUARDED_BY(mu_);
  std::map<std::string, Entry<Histogram>> histograms_ DL_GUARDED_BY(mu_);
};

/// Refreshes process-level gauges in `registry` from their live sources:
/// `buffer_pool.bytes_in_use` / `buffer_pool.acquires` /
/// `buffer_pool.retained_bytes` from `dl::BufferPool::Default()` and
/// `process.bytes_copied` from `dl::TotalBytesCopied()`. These sources live
/// below the obs layer (dl_util cannot depend on dl_obs), so they are
/// pulled at sample time instead of pushed: the flight recorder calls this
/// on every tick and the debug server calls it before rendering /metrics,
/// which keeps the gauges fresh exactly when someone is looking.
void SampleProcessGauges(MetricsRegistry& registry);

/// Mirrors the util-layer lock-contention registry (util/lock_stats.h)
/// into `registry`: per-lock `lock.wait_us{lock=}` / `lock.contentions
/// {lock=}` plus unlabeled process aggregates. Gauges, not counters — a
/// gauge Set is idempotent, so concurrent scrapers (flight recorder tick
/// racing a /metrics request) cannot double-apply a delta. Called by
/// SampleProcessGauges; exposed for tests.
void SampleLockStats(MetricsRegistry& registry);

/// RAII microsecond timer: observes the elapsed time into `hist` on
/// destruction (pass nullptr to disable). Collapses the common
/// "Stopwatch + Observe" pair at call sites.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* hist)
      : hist_(hist), start_us_(hist ? NowMicros() : 0) {}
  ~ScopedTimerUs() {
    if (hist_ != nullptr) hist_->ObserveSinceMicros(start_us_);
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* hist_;
  int64_t start_us_;
};

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_METRICS_H_
