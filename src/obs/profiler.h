#ifndef DEEPLAKE_OBS_PROFILER_H_
#define DEEPLAKE_OBS_PROFILER_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace dl::obs {

/// Sampling CPU profiler (DESIGN.md §7). Arms a POSIX interval timer
/// (ITIMER_PROF) that delivers SIGPROF at `sample_hz` per second of
/// consumed CPU time; the handler captures the interrupted thread's stack
/// into a fixed, pre-allocated slot table using only async-signal-safe
/// operations. Symbolization (dladdr + demangling) happens outside the
/// handler at Stop(), producing folded-stack text —
///
///   frames root-first, ';'-separated, one "stack count" line each:
///     main;RunEpoch;DecodeChunk;crc32c 42
///
/// — the input format of scripts/flamegraph.py and every mainstream flame
/// graph renderer.
///
/// Signal-safety rules (the full catalogue lives in DESIGN.md §7):
///   - all handler state is a process-lifetime arena, never freed, so a
///     late signal can never touch destroyed memory;
///   - the SIGPROF handler, once installed, stays installed: Stop() only
///     disarms the timer and clears an atomic gate. Restoring the old
///     disposition would race a pending SIGPROF whose default action
///     terminates the process;
///   - backtrace() is pre-warmed in Start() before the timer is armed
///     (its first call may lazily load libgcc, which is not safe in a
///     handler);
///   - memory is bounded: at most kMaxStacks distinct stacks; further
///     distinct stacks count into dropped().
///
/// One profiler may run at a time (the slot arena and the timer are
/// process-wide); a second Start() fails with FailedPrecondition. Signal
/// profiling is incompatible with TSan/ASan interceptors, so under those
/// builds Start() returns NotImplemented and callers degrade gracefully.
class CpuProfiler {
 public:
  struct Options {
    /// Samples per second of process CPU time. 97 (prime) avoids lockstep
    /// with periodic work; the classic pprof default.
    int sample_hz = 97;
    /// Deepest stack recorded; deeper frames are truncated at the leaf.
    int max_depth = 48;
  };

  CpuProfiler();
  explicit CpuProfiler(Options options);
  ~CpuProfiler();  // stops if running

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Arms the timer. FailedPrecondition when any profiler is already
  /// running in the process; NotImplemented under TSan/ASan.
  Status Start();

  /// Disarms the timer, waits for in-flight handler invocations to drain,
  /// and symbolizes the collected stacks. Idempotent.
  Status Stop();

  bool running() const { return running_; }

  /// Samples captured / samples dropped (slot table full) so far.
  uint64_t samples() const;
  uint64_t dropped() const;

  /// Folded-stack text. While running, renders the live table; after
  /// Stop(), returns the profile captured by the last run.
  std::string FoldedStacks() const;

  /// False when the build's sanitizers make signal profiling unsafe.
  static bool SupportedInThisBuild();

 private:
  Options options_;
  bool running_ = false;
  bool owns_arena_ = false;  // this instance holds the process-wide claim
  std::string folded_;       // rendered at Stop()
  uint64_t samples_stopped_ = 0;
  uint64_t dropped_stopped_ = 0;
};

/// Convenience used by the DebugServer's /pprof/profile endpoint: runs a
/// profiler for `seconds` of wall time and returns the folded stacks.
Result<std::string> CollectCpuProfile(double seconds,
                                      const CpuProfiler::Options& options =
                                          CpuProfiler::Options{});

}  // namespace dl::obs

#endif  // DEEPLAKE_OBS_PROFILER_H_
