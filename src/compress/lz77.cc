// LZ4-style LZ77 byte compressor. Frame layout:
//   varint raw_size
//   sequences until raw_size bytes are produced:
//     token byte: (literal_len << 4) | match_len_minus_4
//       nibble value 15 means "extended": extra bytes of 255 follow, then a
//       terminator byte < 255, all summed.
//     literal bytes
//     [if match_len nibble > 0 or extended] 2-byte LE offset (1..65535),
//       then extended match length bytes if the nibble was 15.
// The final sequence carries literals only (match nibble 0, no offset) —
// signalled by the stream ending exactly at raw_size.

#include <cstring>

#include "compress/codec.h"
#include "util/coding.h"
#include "util/macros.h"

namespace dl::compress {
namespace {

constexpr int kHashBits = 15;
constexpr size_t kHashSize = 1 << kHashBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash4(const uint8_t* p) {
  return (Load32(p) * 2654435761u) >> (32 - kHashBits);
}

void PutLen(ByteBuffer& out, size_t extra) {
  // Writes the extension bytes for a nibble that was 15.
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<uint8_t>(extra));
}

void EmitSequence(ByteBuffer& out, const uint8_t* lit_start, size_t lit_len,
                  size_t match_len, size_t offset) {
  uint8_t lit_nibble = lit_len >= 15 ? 15 : static_cast<uint8_t>(lit_len);
  uint8_t match_nibble = 0;
  bool has_match = match_len >= kMinMatch;
  if (has_match) {
    size_t ml = match_len - kMinMatch;
    match_nibble = ml >= 15 ? 15 : static_cast<uint8_t>(ml);
  }
  out.push_back(static_cast<uint8_t>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutLen(out, lit_len - 15);
  out.insert(out.end(), lit_start, lit_start + lit_len);
  if (has_match) {
    out.push_back(static_cast<uint8_t>(offset));
    out.push_back(static_cast<uint8_t>(offset >> 8));
    if (match_nibble == 15) PutLen(out, match_len - kMinMatch - 15);
  }
}

class Lz77Codec final : public Codec {
 public:
  Compression id() const override { return Compression::kLz77; }
  std::string_view name() const override { return "lz77"; }

  Result<ByteBuffer> Compress(ByteView raw,
                              const CodecContext& /*ctx*/) const override {
    ByteBuffer out;
    out.reserve(raw.size() / 2 + 16);
    PutVarint64(out, raw.size());
    const uint8_t* base = raw.data();
    const size_t n = raw.size();
    if (n == 0) return out;

    std::vector<uint32_t> table(kHashSize, UINT32_MAX);
    size_t i = 0;
    size_t anchor = 0;  // start of pending literals
    // Matches may not extend into the last kMinMatch bytes so the decoder's
    // wild-copy-free loop stays simple.
    const size_t match_limit = n >= kMinMatch ? n - kMinMatch : 0;
    while (i + kMinMatch <= n && i < match_limit) {
      uint32_t h = Hash4(base + i);
      uint32_t cand = table[h];
      table[h] = static_cast<uint32_t>(i);
      if (cand != UINT32_MAX && i - cand <= kMaxOffset &&
          Load32(base + cand) == Load32(base + i)) {
        // Extend the match forward.
        size_t match_len = kMinMatch;
        while (i + match_len < n &&
               base[cand + match_len] == base[i + match_len]) {
          ++match_len;
        }
        EmitSequence(out, base + anchor, i - anchor, match_len, i - cand);
        // Index a couple of positions inside the match to keep the table
        // warm without hashing every byte.
        size_t end = i + match_len;
        for (size_t p = i + 1; p + kMinMatch <= end && p + kMinMatch <= n;
             p += match_len / 4 + 1) {
          table[Hash4(base + p)] = static_cast<uint32_t>(p);
        }
        i = end;
        anchor = i;
      } else {
        ++i;
      }
    }
    // Trailing literals.
    if (anchor < n) {
      EmitSequence(out, base + anchor, n - anchor, 0, 0);
    }
    return out;
  }

  Status DecompressInto(ByteView frame, ByteBuffer& out) const override {
    out.clear();
    Decoder dec{frame};
    DL_ASSIGN_OR_RETURN(uint64_t raw_size, dec.GetVarint64());
    // raw_size comes off the wire: sanity-bound it before allocating.
    // Each frame byte can contribute at most 255 output bytes (a match
    // length extension byte of 255), so anything beyond that ratio is a
    // corrupt header — reject it instead of attempting a huge reserve.
    if (raw_size > static_cast<uint64_t>(frame.size()) * 255 + 255) {
      return Status::Corruption("lz77: raw size implausible for frame");
    }
    out.reserve(static_cast<size_t>(raw_size));
    while (out.size() < raw_size) {
      DL_ASSIGN_OR_RETURN(uint8_t token, dec.GetByte());
      size_t lit_len = token >> 4;
      if (lit_len == 15) {
        while (true) {
          DL_ASSIGN_OR_RETURN(uint8_t b, dec.GetByte());
          lit_len += b;
          if (b != 255) break;
        }
      }
      DL_ASSIGN_OR_RETURN(ByteView lits, dec.GetBytes(lit_len));
      out.insert(out.end(), lits.begin(), lits.end());
      if (out.size() >= raw_size) break;  // final literal-only sequence
      size_t match_len = token & 0x0f;
      DL_ASSIGN_OR_RETURN(uint8_t o0, dec.GetByte());
      DL_ASSIGN_OR_RETURN(uint8_t o1, dec.GetByte());
      size_t offset = static_cast<size_t>(o0) | (static_cast<size_t>(o1) << 8);
      if (match_len == 15) {
        while (true) {
          DL_ASSIGN_OR_RETURN(uint8_t b, dec.GetByte());
          match_len += b;
          if (b != 255) break;
        }
      }
      match_len += kMinMatch;
      if (offset == 0 || offset > out.size()) {
        return Status::Corruption("lz77: bad match offset");
      }
      if (out.size() + match_len > raw_size) {
        return Status::Corruption("lz77: match overruns raw size");
      }
      // Byte-wise copy: handles overlapping matches (offset < match_len).
      size_t src = out.size() - offset;
      for (size_t k = 0; k < match_len; ++k) out.push_back(out[src + k]);
    }
    if (out.size() != raw_size) {
      return Status::Corruption("lz77: frame shorter than raw size");
    }
    return Status::OK();
  }
};

}  // namespace

const Codec* GetLz77Codec() {
  static const Lz77Codec* kCodec = new Lz77Codec();
  return kCodec;
}

}  // namespace dl::compress
