#ifndef DEEPLAKE_COMPRESS_CODEC_H_
#define DEEPLAKE_COMPRESS_CODEC_H_

#include <cstdint>
#include <string_view>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/result.h"

namespace dl::compress {

/// Compression schemes available to tensors. The paper's running example
/// (§5) stores image tensors with JPEG *sample compression* and label
/// tensors with LZ4 *chunk compression*; here `kImage`/`kImageLossy` stand
/// in for PNG/JPEG and `kLz77` for LZ4 (see DESIGN.md substitutions).
enum class Compression : uint8_t {
  kNone = 0,
  kLz77 = 1,        // LZ4-style byte compressor (chunk compression default)
  kRle = 2,         // PackBits run-length (masks, sparse labels)
  kDelta = 3,       // zigzag-delta varints for integer tensors
  kImage = 4,       // lossless predictive filter + LZ77 (PNG stand-in)
  kImageLossy = 5,  // quantized predictive filter + LZ77 (JPEG stand-in)
};

/// Parses "none" / "lz77" / "lz4" (alias) / "rle" / "delta" / "image" /
/// "image_lossy" / "png" / "jpeg" (aliases).
Result<Compression> CompressionFromName(std::string_view name);
std::string_view CompressionName(Compression c);

/// Side information some codecs use at compression time. Everything needed
/// for decompression is stored in the frame itself, so decompression never
/// needs a context.
struct CodecContext {
  /// Bytes per image row (= width * channels) for the image codecs; 0 means
  /// "treat the buffer as one row".
  uint64_t row_stride = 0;
  /// Element width in bytes for the delta codec (1, 2, 4 or 8).
  uint32_t elem_size = 1;
  /// Image-lossy quality in [1, 100]; higher keeps more bits. 0 = default.
  int quality = 0;
};

/// A byte-oriented compression codec. Stateless and thread-safe; obtained
/// from `GetCodec` (singletons).
class Codec {
 public:
  virtual ~Codec() = default;

  virtual Compression id() const = 0;
  virtual std::string_view name() const = 0;

  /// Compresses `raw` into a self-describing frame.
  virtual Result<ByteBuffer> Compress(ByteView raw,
                                      const CodecContext& ctx) const = 0;

  /// Decompresses a frame produced by `Compress`, appending into `out`
  /// (cleared first; pre-reserved capacity — e.g. from a BufferPool — is
  /// kept). Returns Corruption on a malformed frame.
  virtual Status DecompressInto(ByteView frame, ByteBuffer& out) const = 0;

  /// Decompresses into a fresh buffer. Returns Corruption on a malformed
  /// frame.
  Result<ByteBuffer> Decompress(ByteView frame) const;
};

/// Returns the singleton codec for `c`; never null.
const Codec* GetCodec(Compression c);

/// Convenience wrappers.
Result<ByteBuffer> CompressBytes(Compression c, ByteView raw,
                                 const CodecContext& ctx = {});
Result<ByteBuffer> DecompressBytes(Compression c, ByteView frame);

/// Decompresses into a buffer recycled from `pool` and seals it into an
/// owning Slice — the chunk-decode hot path: steady-state epoch loops hit
/// the pool's free list instead of the allocator (DESIGN.md §10).
Result<Slice> DecompressToSlice(Compression c, ByteView frame,
                                BufferPool& pool = BufferPool::Default());

/// Shape information recovered from an image-codec frame header without
/// decompressing — the ingestion fast path (§5 "the binary is directly
/// copied into a chunk without additional decoding") still needs the
/// logical shape for the tensor's shape encoder.
struct ImageFrameInfo {
  uint64_t height = 0;
  uint64_t width = 0;
  uint64_t channels = 0;
  bool lossy = false;
  uint64_t raw_bytes = 0;
};
Result<ImageFrameInfo> PeekImageFrameInfo(ByteView frame);

}  // namespace dl::compress

#endif  // DEEPLAKE_COMPRESS_CODEC_H_
