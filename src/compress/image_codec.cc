// Predictive image codec — the repo's stand-in for PNG (lossless mode) and
// JPEG (lossy mode). See DESIGN.md §1.
//
// Pipeline: [quantize (lossy only)] -> per-row Paeth prediction residuals
// -> LZ77 entropy stage. The frame is self-describing:
//   u8 magic 'I', u8 mode (0 lossless / 1 lossy), u8 quant_shift,
//   varint pixel_stride (channels), varint row_stride (width*channels),
//   varint raw_size, then an embedded LZ77 frame of the residual plane.

#include <cstdlib>

#include "compress/codec.h"
#include "util/coding.h"
#include "util/macros.h"

namespace dl::compress {

const Codec* GetLz77Codec();

namespace {

constexpr uint8_t kMagic = 'I';

uint8_t Paeth(uint8_t left, uint8_t up, uint8_t upleft) {
  int p = static_cast<int>(left) + up - upleft;
  int pa = std::abs(p - left);
  int pb = std::abs(p - up);
  int pc = std::abs(p - upleft);
  if (pa <= pb && pa <= pc) return left;
  if (pb <= pc) return up;
  return upleft;
}

// Residual plane via Paeth prediction. `stride` is bytes per row, `bpp`
// bytes per pixel (the "left" neighbour distance).
ByteBuffer FilterPlane(ByteView raw, size_t stride, size_t bpp) {
  ByteBuffer out(raw.size());
  const uint8_t* p = raw.data();
  size_t n = raw.size();
  for (size_t i = 0; i < n; ++i) {
    size_t col = i % stride;
    uint8_t left = col >= bpp ? p[i - bpp] : 0;
    uint8_t up = i >= stride ? p[i - stride] : 0;
    uint8_t upleft = (i >= stride && col >= bpp) ? p[i - stride - bpp] : 0;
    out[i] = static_cast<uint8_t>(p[i] - Paeth(left, up, upleft));
  }
  return out;
}

void UnfilterPlane(ByteBuffer& data, size_t stride, size_t bpp) {
  size_t n = data.size();
  for (size_t i = 0; i < n; ++i) {
    size_t col = i % stride;
    uint8_t left = col >= bpp ? data[i - bpp] : 0;
    uint8_t up = i >= stride ? data[i - stride] : 0;
    uint8_t upleft = (i >= stride && col >= bpp) ? data[i - stride - bpp] : 0;
    data[i] = static_cast<uint8_t>(data[i] + Paeth(left, up, upleft));
  }
}

int ShiftForQuality(int quality) {
  if (quality <= 0) quality = 75;  // default
  if (quality > 100) quality = 100;
  if (quality >= 90) return 0;
  if (quality >= 70) return 1;
  if (quality >= 50) return 2;
  if (quality >= 30) return 3;
  return 4;
}

class ImageCodec : public Codec {
 public:
  explicit ImageCodec(bool lossy) : lossy_(lossy) {}

  Compression id() const override {
    return lossy_ ? Compression::kImageLossy : Compression::kImage;
  }
  std::string_view name() const override {
    return lossy_ ? "image_lossy" : "image";
  }

  Result<ByteBuffer> Compress(ByteView raw,
                              const CodecContext& ctx) const override {
    size_t stride = ctx.row_stride > 0 && ctx.row_stride <= raw.size()
                        ? ctx.row_stride
                        : (raw.size() > 0 ? raw.size() : 1);
    size_t bpp = ctx.elem_size > 0 ? ctx.elem_size : 1;
    if (bpp > stride) bpp = stride;
    int shift = lossy_ ? ShiftForQuality(ctx.quality) : 0;

    ByteBuffer plane;
    ByteView source = raw;
    if (shift > 0) {
      plane.resize(raw.size());
      for (size_t i = 0; i < raw.size(); ++i) plane[i] = raw[i] >> shift;
      source = ByteView(plane);
    }
    ByteBuffer residuals = FilterPlane(source, stride, bpp);

    ByteBuffer out;
    out.push_back(kMagic);
    out.push_back(lossy_ ? 1 : 0);
    out.push_back(static_cast<uint8_t>(shift));
    PutVarint64(out, bpp);
    PutVarint64(out, stride);
    PutVarint64(out, raw.size());
    DL_ASSIGN_OR_RETURN(ByteBuffer lz,
                        GetLz77Codec()->Compress(ByteView(residuals), {}));
    AppendBytes(out, ByteView(lz));
    return out;
  }

  Status DecompressInto(ByteView frame, ByteBuffer& out) const override {
    out.clear();
    Decoder dec{frame};
    DL_ASSIGN_OR_RETURN(uint8_t magic, dec.GetByte());
    if (magic != kMagic) return Status::Corruption("image: bad magic");
    DL_ASSIGN_OR_RETURN(uint8_t mode, dec.GetByte());
    DL_ASSIGN_OR_RETURN(uint8_t shift, dec.GetByte());
    DL_ASSIGN_OR_RETURN(uint64_t bpp, dec.GetVarint64());
    DL_ASSIGN_OR_RETURN(uint64_t stride, dec.GetVarint64());
    DL_ASSIGN_OR_RETURN(uint64_t raw_size, dec.GetVarint64());
    if (stride == 0 || bpp == 0) {
      return Status::Corruption("image: zero stride");
    }
    DL_ASSIGN_OR_RETURN(ByteView rest, dec.GetBytes(dec.remaining()));
    // The embedded LZ77 stage unpacks the residual plane straight into the
    // caller's (possibly pooled) buffer; unfiltering then runs in place.
    DL_RETURN_IF_ERROR(GetLz77Codec()->DecompressInto(rest, out));
    if (out.size() != raw_size) {
      return Status::Corruption("image: residual plane size mismatch");
    }
    UnfilterPlane(out, stride, bpp);
    if (mode == 1 && shift > 0) {
      uint8_t center = static_cast<uint8_t>(1u << (shift - 1));
      for (auto& b : out) {
        b = static_cast<uint8_t>((b << shift) | center);
      }
    }
    return Status::OK();
  }

 private:
  bool lossy_;
};

}  // namespace

Result<ImageFrameInfo> PeekImageFrameInfo(ByteView frame) {
  Decoder dec{frame};
  DL_ASSIGN_OR_RETURN(uint8_t magic, dec.GetByte());
  if (magic != kMagic) return Status::Corruption("image: bad magic");
  DL_ASSIGN_OR_RETURN(uint8_t mode, dec.GetByte());
  DL_RETURN_IF_ERROR(dec.Skip(1));  // quant shift
  DL_ASSIGN_OR_RETURN(uint64_t bpp, dec.GetVarint64());
  DL_ASSIGN_OR_RETURN(uint64_t stride, dec.GetVarint64());
  DL_ASSIGN_OR_RETURN(uint64_t raw_size, dec.GetVarint64());
  if (bpp == 0 || stride == 0 || stride % bpp != 0 ||
      raw_size % stride != 0) {
    return Status::Corruption("image: inconsistent frame geometry");
  }
  ImageFrameInfo info;
  info.channels = bpp;
  info.width = stride / bpp;
  info.height = raw_size / stride;
  info.lossy = mode == 1;
  info.raw_bytes = raw_size;
  return info;
}

const Codec* GetImageCodec() {
  static const ImageCodec* kCodec = new ImageCodec(/*lossy=*/false);
  return kCodec;
}
const Codec* GetImageLossyCodec() {
  static const ImageCodec* kCodec = new ImageCodec(/*lossy=*/true);
  return kCodec;
}

}  // namespace dl::compress
