#include "compress/codec.h"

#include "util/macros.h"

namespace dl::compress {

// Singletons defined in the codec translation units.
const Codec* GetNoneCodec();
const Codec* GetLz77Codec();
const Codec* GetRleCodec();
const Codec* GetDeltaCodec();
const Codec* GetImageCodec();
const Codec* GetImageLossyCodec();

const Codec* GetCodec(Compression c) {
  switch (c) {
    case Compression::kNone:
      return GetNoneCodec();
    case Compression::kLz77:
      return GetLz77Codec();
    case Compression::kRle:
      return GetRleCodec();
    case Compression::kDelta:
      return GetDeltaCodec();
    case Compression::kImage:
      return GetImageCodec();
    case Compression::kImageLossy:
      return GetImageLossyCodec();
  }
  return GetNoneCodec();
}

Result<Compression> CompressionFromName(std::string_view name) {
  if (name.empty() || name == "none") return Compression::kNone;
  if (name == "lz77" || name == "lz4") return Compression::kLz77;
  if (name == "rle") return Compression::kRle;
  if (name == "delta") return Compression::kDelta;
  if (name == "image" || name == "png") return Compression::kImage;
  if (name == "image_lossy" || name == "jpeg" || name == "jpg") {
    return Compression::kImageLossy;
  }
  return Status::InvalidArgument("unknown compression '" + std::string(name) +
                                 "'");
}

std::string_view CompressionName(Compression c) {
  return GetCodec(c)->name();
}

Result<ByteBuffer> CompressBytes(Compression c, ByteView raw,
                                 const CodecContext& ctx) {
  return GetCodec(c)->Compress(raw, ctx);
}

Result<ByteBuffer> DecompressBytes(Compression c, ByteView frame) {
  return GetCodec(c)->Decompress(frame);
}

Result<ByteBuffer> Codec::Decompress(ByteView frame) const {
  ByteBuffer out;
  DL_RETURN_IF_ERROR(DecompressInto(frame, out));
  return out;
}

Result<Slice> DecompressToSlice(Compression c, ByteView frame,
                                BufferPool& pool) {
  // The frame size is only a lower bound on the raw size, but steady-state
  // decode sees similarly sized chunks, so a retained buffer that grew once
  // keeps absorbing subsequent decodes without reallocating.
  ByteBuffer out = pool.Acquire(frame.size());
  DL_RETURN_IF_ERROR(GetCodec(c)->DecompressInto(frame, out));
  return pool.Seal(std::move(out));
}

}  // namespace dl::compress
