// NoneCodec, RleCodec (PackBits) and DeltaCodec (zigzag varint deltas).

#include <cstring>

#include "compress/codec.h"
#include "util/coding.h"
#include "util/macros.h"

namespace dl::compress {
namespace {

class NoneCodec final : public Codec {
 public:
  Compression id() const override { return Compression::kNone; }
  std::string_view name() const override { return "none"; }

  Result<ByteBuffer> Compress(ByteView raw,
                              const CodecContext& /*ctx*/) const override {
    return raw.ToBuffer();
  }
  Status DecompressInto(ByteView frame, ByteBuffer& out) const override {
    out.clear();
    AppendBytes(out, frame);
    return Status::OK();
  }
};

// PackBits-style RLE. Frame: varint raw_size, then control runs:
//   control c in [0,127]: literal run, copy next c+1 bytes
//   control c in [128,255]: repeat run, next byte repeated c-126 times
//     (i.e. run lengths 2..129)
class RleCodec final : public Codec {
 public:
  Compression id() const override { return Compression::kRle; }
  std::string_view name() const override { return "rle"; }

  Result<ByteBuffer> Compress(ByteView raw,
                              const CodecContext& /*ctx*/) const override {
    ByteBuffer out;
    PutVarint64(out, raw.size());
    const uint8_t* p = raw.data();
    size_t n = raw.size();
    size_t i = 0;
    while (i < n) {
      // Measure the run starting at i.
      size_t run = 1;
      while (i + run < n && p[i + run] == p[i] && run < 129) ++run;
      if (run >= 2) {
        out.push_back(static_cast<uint8_t>(126 + run));
        out.push_back(p[i]);
        i += run;
        continue;
      }
      // Literal run: extend until the next repeat of length >= 3 (a repeat
      // of 2 is not worth breaking a literal run for) or the cap.
      size_t start = i;
      while (i < n && i - start < 128) {
        size_t r = 1;
        while (i + r < n && p[i + r] == p[i] && r < 3) ++r;
        if (r >= 3) break;
        ++i;
      }
      if (i == start) {  // forced by immediate repeat; emit one literal
        i = start + 1;
      }
      out.push_back(static_cast<uint8_t>(i - start - 1));
      out.insert(out.end(), p + start, p + i);
    }
    return out;
  }

  Status DecompressInto(ByteView frame, ByteBuffer& out) const override {
    out.clear();
    Decoder dec{frame};
    DL_ASSIGN_OR_RETURN(uint64_t raw_size, dec.GetVarint64());
    // raw_size is wire-controlled: bound it before allocating. A run
    // sequence is two frame bytes producing at most 129 output bytes, so
    // >129x expansion means a corrupt header, not a real frame.
    if (raw_size > static_cast<uint64_t>(frame.size()) * 129 + 129) {
      return Status::Corruption("rle: raw size implausible for frame");
    }
    out.reserve(static_cast<size_t>(raw_size));
    while (out.size() < raw_size) {
      DL_ASSIGN_OR_RETURN(uint8_t c, dec.GetByte());
      if (c < 128) {
        DL_ASSIGN_OR_RETURN(ByteView lits, dec.GetBytes(c + 1));
        out.insert(out.end(), lits.begin(), lits.end());
      } else {
        DL_ASSIGN_OR_RETURN(uint8_t b, dec.GetByte());
        out.insert(out.end(), c - 126, b);
      }
    }
    if (out.size() != raw_size) {
      return Status::Corruption("rle: output overruns declared size");
    }
    return Status::OK();
  }
};

// Zigzag-delta varint coding for little-endian integer arrays. Frame:
//   u8 elem_size, varint elem_count, then per-element zigzag varint deltas.
// Trailing bytes that do not form a whole element are stored raw at the end.
class DeltaCodec final : public Codec {
 public:
  Compression id() const override { return Compression::kDelta; }
  std::string_view name() const override { return "delta"; }

  Result<ByteBuffer> Compress(ByteView raw,
                              const CodecContext& ctx) const override {
    uint32_t es = ctx.elem_size;
    if (es != 1 && es != 2 && es != 4 && es != 8) es = 1;
    size_t count = raw.size() / es;
    size_t tail = raw.size() % es;
    ByteBuffer out;
    out.push_back(static_cast<uint8_t>(es));
    PutVarint64(out, count);
    PutVarint64(out, tail);
    int64_t prev = 0;
    for (size_t i = 0; i < count; ++i) {
      int64_t v = LoadSigned(raw.data() + i * es, es);
      // Deltas are exact mod 2^64; unsigned subtraction keeps the extreme
      // case (INT64_MAX after INT64_MIN) defined where `v - prev` is UB.
      PutVarintSigned64(out, static_cast<int64_t>(static_cast<uint64_t>(v) -
                                                  static_cast<uint64_t>(prev)));
      prev = v;
    }
    AppendBytes(out, raw.subview(count * es, tail));
    return out;
  }

  Status DecompressInto(ByteView frame, ByteBuffer& out) const override {
    out.clear();
    Decoder dec{frame};
    DL_ASSIGN_OR_RETURN(uint8_t es, dec.GetByte());
    if (es != 1 && es != 2 && es != 4 && es != 8) {
      return Status::Corruption("delta: bad element size");
    }
    DL_ASSIGN_OR_RETURN(uint64_t count, dec.GetVarint64());
    DL_ASSIGN_OR_RETURN(uint64_t tail, dec.GetVarint64());
    // count/tail are wire-controlled: each element costs at least one delta
    // varint byte and the tail is stored raw, so both are bounded by the
    // remaining frame bytes. Checking before the multiply also keeps
    // count * es from overflowing.
    if (count > dec.remaining() || tail > dec.remaining()) {
      return Status::Corruption("delta: counts implausible for frame");
    }
    out.reserve(static_cast<size_t>(count * es + tail));
    int64_t prev = 0;
    for (uint64_t i = 0; i < count; ++i) {
      DL_ASSIGN_OR_RETURN(int64_t d, dec.GetVarintSigned64());
      // Mirror of the encoder: accumulate with defined unsigned wraparound.
      prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                  static_cast<uint64_t>(d));
      StoreSigned(out, prev, es);
    }
    DL_ASSIGN_OR_RETURN(ByteView rest, dec.GetBytes(tail));
    AppendBytes(out, rest);
    return Status::OK();
  }

 private:
  static int64_t LoadSigned(const uint8_t* p, uint32_t es) {
    uint64_t v = 0;
    std::memcpy(&v, p, es);
    // Sign-extend.
    if (es < 8) {
      uint64_t sign_bit = 1ull << (es * 8 - 1);
      if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
    }
    return static_cast<int64_t>(v);
  }

  static void StoreSigned(ByteBuffer& out, int64_t v, uint32_t es) {
    uint64_t u = static_cast<uint64_t>(v);
    for (uint32_t i = 0; i < es; ++i) {
      out.push_back(static_cast<uint8_t>(u >> (8 * i)));
    }
  }
};

}  // namespace

const Codec* GetNoneCodec() {
  static const NoneCodec* kCodec = new NoneCodec();
  return kCodec;
}
const Codec* GetRleCodec() {
  static const RleCodec* kCodec = new RleCodec();
  return kCodec;
}
const Codec* GetDeltaCodec() {
  static const DeltaCodec* kCodec = new DeltaCodec();
  return kCodec;
}

}  // namespace dl::compress
