#include "viz/visualizer.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"
#include "util/string_util.h"

namespace dl::viz {

namespace {

PanelRole RoleForHtype(const tsf::Htype& htype) {
  if (htype.is_link) return PanelRole::kSidebar;
  switch (htype.kind) {
    case tsf::HtypeKind::kImage:
    case tsf::HtypeKind::kVideo:
    case tsf::HtypeKind::kAudio:
    case tsf::HtypeKind::kDicom:
      return PanelRole::kPrimary;
    case tsf::HtypeKind::kBBox:
    case tsf::HtypeKind::kBinaryMask:
      return PanelRole::kOverlay;
    default:
      return PanelRole::kSidebar;
  }
}

}  // namespace

Json LayoutPlan::ToJson() const {
  Json arr = Json::MakeArray();
  for (const auto& p : panels) {
    Json j = Json::MakeObject();
    j.Set("tensor", p.tensor);
    j.Set("htype", p.htype.ToString());
    j.Set("role", p.role == PanelRole::kPrimary
                      ? "primary"
                      : (p.role == PanelRole::kOverlay ? "overlay"
                                                       : "sidebar"));
    j.Set("sequence_view", p.sequence_view);
    arr.Append(std::move(j));
  }
  Json out = Json::MakeObject();
  out.Set("panels", std::move(arr));
  return out;
}

LayoutPlan PlanLayout(const tsf::Dataset& dataset) {
  LayoutPlan plan;
  bool have_primary = false;
  // Two passes: primaries first (§4.3 "primary tensors ... are displayed
  // first"), then overlays and sidebars.
  auto names = dataset.TensorNames();
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& name : names) {
      auto tensor = const_cast<tsf::Dataset&>(dataset).GetTensor(name);
      if (!tensor.ok()) continue;
      const tsf::Htype& htype = (*tensor)->meta().htype;
      PanelRole role = RoleForHtype(htype);
      bool is_primary_pass = role == PanelRole::kPrimary;
      if ((pass == 0) != is_primary_pass) continue;
      Panel panel;
      panel.tensor = name;
      panel.htype = htype;
      // Only the first primary drives the canvas; later ones are sidebars
      // (side-by-side comparison panels).
      if (is_primary_pass && have_primary) role = PanelRole::kSidebar;
      if (is_primary_pass && !have_primary) have_primary = true;
      panel.role = role;
      panel.sequence_view = htype.is_sequence;
      plan.panels.push_back(std::move(panel));
    }
  }
  return plan;
}

std::string PyramidTensorName(const std::string& tensor, int level) {
  return "_pyr/" + tensor + "/" + std::to_string(level);
}

namespace {

/// 2x box-filter downsample of an HxWxC uint8 image.
tsf::Sample Downsample2x(const tsf::Sample& src) {
  uint64_t h = src.shape[0], w = src.shape[1];
  uint64_t c = src.shape.ndim() >= 3 ? src.shape[2] : 1;
  uint64_t oh = std::max<uint64_t>(1, h / 2);
  uint64_t ow = std::max<uint64_t>(1, w / 2);
  ByteBuffer staging(oh * ow * c);
  for (uint64_t y = 0; y < oh; ++y) {
    for (uint64_t x = 0; x < ow; ++x) {
      for (uint64_t ch = 0; ch < c; ++ch) {
        uint32_t acc = 0;
        int n = 0;
        for (uint64_t dy = 0; dy < 2; ++dy) {
          for (uint64_t dx = 0; dx < 2; ++dx) {
            uint64_t sy = std::min(h - 1, y * 2 + dy);
            uint64_t sx = std::min(w - 1, x * 2 + dx);
            acc += src.data[(sy * w + sx) * c + ch];
            ++n;
          }
        }
        staging[(y * ow + x) * c + ch] = static_cast<uint8_t>(acc / n);
      }
    }
  }
  return tsf::Sample(src.dtype, tsf::TensorShape{oh, ow, c},
                     Slice(std::move(staging)));
}

}  // namespace

Result<std::vector<std::string>> BuildPyramid(tsf::Dataset& dataset,
                                              const std::string& tensor_name,
                                              int levels) {
  DL_ASSIGN_OR_RETURN(tsf::Tensor * tensor, dataset.GetTensor(tensor_name));
  if (tensor->meta().htype.kind != tsf::HtypeKind::kImage) {
    return Status::FailedPrecondition("pyramid: tensor '" + tensor_name +
                                      "' is not an image tensor");
  }
  std::vector<std::string> created;
  // Hidden pyramid tensors are created, filled and flushed here; readers
  // reopen them by name.
  std::vector<std::unique_ptr<tsf::Tensor>> owned;
  std::vector<tsf::Tensor*> level_tensors;
  for (int level = 1; level <= levels; ++level) {
    std::string name = PyramidTensorName(tensor_name, level);
    tsf::TensorOptions opts;
    opts.htype = "image";
    opts.sample_compression = "image";
    opts.hidden = true;
    DL_ASSIGN_OR_RETURN(
        auto t, tsf::Tensor::Create(dataset.store(), name, opts));
    level_tensors.push_back(t.get());
    created.push_back(name);
    owned.push_back(std::move(t));
  }
  for (uint64_t row = 0; row < tensor->NumSamples(); ++row) {
    DL_ASSIGN_OR_RETURN(tsf::Sample img, tensor->Read(row));
    tsf::Sample current = std::move(img);
    for (int level = 0; level < levels; ++level) {
      current = Downsample2x(current);
      DL_RETURN_IF_ERROR(level_tensors[level]->Append(current));
    }
  }
  for (auto* t : level_tensors) {
    DL_RETURN_IF_ERROR(t->Flush());
  }
  dataset.LogProvenance("built " + std::to_string(levels) +
                        "-level pyramid for '" + tensor_name + "'");
  return created;
}

Json RenderReport::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("row", row);
  j.Set("primary_tensor", primary_tensor);
  j.Set("pyramid_level_used", pyramid_level_used);
  j.Set("boxes_drawn", boxes_drawn);
  j.Set("mask_overlaid", mask_overlaid);
  Json labels = Json::MakeArray();
  for (const auto& t : label_texts) labels.Append(t);
  j.Set("labels", std::move(labels));
  return j;
}

namespace {

void DrawRectOutline(Framebuffer& fb, int64_t x0, int64_t y0, int64_t x1,
                     int64_t y1, const uint8_t rgb[3]) {
  auto plot = [&](int64_t x, int64_t y) {
    if (x < 0 || y < 0 || x >= static_cast<int64_t>(fb.width) ||
        y >= static_cast<int64_t>(fb.height)) {
      return;
    }
    uint8_t* p = fb.PixelAt(static_cast<uint64_t>(x),
                            static_cast<uint64_t>(y));
    p[0] = rgb[0];
    p[1] = rgb[1];
    p[2] = rgb[2];
    p[3] = 255;
  };
  for (int64_t x = x0; x <= x1; ++x) {
    plot(x, y0);
    plot(x, y1);
  }
  for (int64_t y = y0; y <= y1; ++y) {
    plot(x0, y);
    plot(x1, y);
  }
}

}  // namespace

Result<Framebuffer> RenderRow(tsf::Dataset& dataset, const LayoutPlan& plan,
                              uint64_t row, const RenderOptions& options,
                              RenderReport* report) {
  const Panel* primary = plan.primary();
  if (primary == nullptr) {
    return Status::FailedPrecondition("render: layout has no primary panel");
  }
  RenderReport local_report;
  RenderReport& rep = report ? *report : local_report;
  rep.row = row;
  rep.primary_tensor = primary->tensor;

  DL_ASSIGN_OR_RETURN(tsf::Tensor * tensor,
                      dataset.GetTensor(primary->tensor));
  DL_ASSIGN_OR_RETURN(tsf::TensorShape full_shape, tensor->ShapeAt(row));
  bool is_sequence = primary->sequence_view;
  size_t spatial0 = is_sequence ? 1 : 0;
  uint64_t img_h = full_shape[spatial0];
  uint64_t img_w = full_shape[spatial0 + 1];
  uint64_t channels =
      full_shape.ndim() > spatial0 + 2 ? full_shape[spatial0 + 2] : 1;

  uint64_t src_x = options.src_x, src_y = options.src_y;
  uint64_t src_w = options.src_w > 0 ? options.src_w : img_w;
  uint64_t src_h = options.src_h > 0 ? options.src_h : img_h;
  src_w = std::min(src_w, img_w - std::min(src_x, img_w));
  src_h = std::min(src_h, img_h - std::min(src_y, img_h));
  if (src_w == 0 || src_h == 0) {
    return Status::InvalidArgument("render: empty source window");
  }

  // Pick a pyramid level: stepping down while the window is >= 2x the
  // viewport keeps fetched bytes proportional to the viewport.
  tsf::Tensor* source_tensor = tensor;
  std::vector<std::unique_ptr<tsf::Tensor>> opened_pyramids;
  int level = 0;
  if (options.use_pyramid && !is_sequence) {
    while (src_w / 2 >= options.viewport_width &&
           src_h / 2 >= options.viewport_height) {
      std::string name = PyramidTensorName(primary->tensor, level + 1);
      auto pyr = tsf::Tensor::Open(dataset.store(), name);
      if (!pyr.ok()) break;
      ++level;
      src_x /= 2;
      src_y /= 2;
      src_w /= 2;
      src_h /= 2;
      opened_pyramids.push_back(std::move(pyr).value());
      source_tensor = opened_pyramids.back().get();
    }
  }
  rep.pyramid_level_used = level;

  // Fetch only the visible window (tiled samples fetch only overlapping
  // tiles via ReadRegion).
  tsf::Sample window;
  if (is_sequence) {
    DL_ASSIGN_OR_RETURN(tsf::Sample seq, source_tensor->Read(row));
    // Slice one sequence step without fetching per-step: a subslice shares
    // the sequence sample's buffer, so step extraction copies nothing.
    uint64_t step = std::min(options.sequence_position, full_shape[0] - 1);
    uint64_t step_bytes = img_h * img_w * channels;
    window = tsf::Sample(seq.dtype, tsf::TensorShape{img_h, img_w, channels},
                         seq.data.subslice(step * step_bytes, step_bytes));
  } else {
    std::vector<uint64_t> starts = {src_y, src_x};
    std::vector<uint64_t> sizes = {src_h, src_w};
    DL_ASSIGN_OR_RETURN(tsf::TensorShape src_shape,
                        source_tensor->ShapeAt(row));
    if (src_shape.ndim() >= 3) {
      starts.push_back(0);
      sizes.push_back(channels);
    }
    DL_ASSIGN_OR_RETURN(window, source_tensor->ReadRegion(row, starts, sizes));
  }

  // Nearest-neighbour blit into the viewport.
  Framebuffer fb;
  fb.width = options.viewport_width;
  fb.height = options.viewport_height;
  fb.rgba.assign(fb.width * fb.height * 4, 0);
  for (uint64_t y = 0; y < fb.height; ++y) {
    uint64_t sy = y * src_h / fb.height;
    for (uint64_t x = 0; x < fb.width; ++x) {
      uint64_t sx = x * src_w / fb.width;
      const uint8_t* src = window.data.data() +
                           (sy * src_w + sx) * channels;
      uint8_t* dst = fb.PixelAt(x, y);
      if (channels >= 3) {
        dst[0] = src[0];
        dst[1] = src[1];
        dst[2] = src[2];
      } else {
        dst[0] = dst[1] = dst[2] = src[0];
      }
      dst[3] = 255;
    }
  }

  // Overlays.
  double scale_x = static_cast<double>(fb.width) / src_w;
  double scale_y = static_cast<double>(fb.height) / src_h;
  double origin_x = static_cast<double>(src_x) * (1 << level);
  double origin_y = static_cast<double>(src_y) * (1 << level);
  double level_scale = 1.0 / (1 << level);
  for (const auto& panel : plan.panels) {
    if (panel.role == PanelRole::kOverlay) {
      auto overlay_tensor = dataset.GetTensor(panel.tensor);
      if (!overlay_tensor.ok()) continue;
      if (row >= (*overlay_tensor)->NumSamples()) continue;
      auto cell = (*overlay_tensor)->Read(row);
      if (!cell.ok() || cell->shape.IsEmptySample()) continue;
      if (panel.htype.kind == tsf::HtypeKind::kBBox) {
        // (n, 4) boxes in full-resolution (x, y, w, h).
        size_t n = cell->shape.ndim() == 2 ? cell->shape[0] : 1;
        static const uint8_t kBoxColors[4][3] = {
            {255, 64, 64}, {64, 255, 64}, {64, 128, 255}, {255, 200, 0}};
        for (size_t b = 0; b < n; ++b) {
          double bx = cell->At(b * 4 + 0), by = cell->At(b * 4 + 1);
          double bw = cell->At(b * 4 + 2), bh = cell->At(b * 4 + 3);
          int64_t x0 = static_cast<int64_t>(
              ((bx - origin_x) * level_scale) * scale_x);
          int64_t y0 = static_cast<int64_t>(
              ((by - origin_y) * level_scale) * scale_y);
          int64_t x1 = static_cast<int64_t>(
              ((bx + bw - origin_x) * level_scale) * scale_x);
          int64_t y1 = static_cast<int64_t>(
              ((by + bh - origin_y) * level_scale) * scale_y);
          DrawRectOutline(fb, x0, y0, x1, y1, kBoxColors[b % 4]);
          rep.boxes_drawn++;
        }
      } else if (panel.htype.kind == tsf::HtypeKind::kBinaryMask) {
        // Tint masked pixels red; mask is full-resolution (h, w).
        uint64_t mh = cell->shape[0], mw = cell->shape[1];
        for (uint64_t y = 0; y < fb.height; ++y) {
          uint64_t sy = static_cast<uint64_t>(
              (origin_y + y * src_h / static_cast<double>(fb.height) *
                              (1 << level)));
          if (sy >= mh) continue;
          for (uint64_t x = 0; x < fb.width; ++x) {
            uint64_t sx = static_cast<uint64_t>(
                (origin_x + x * src_w / static_cast<double>(fb.width) *
                                (1 << level)));
            if (sx >= mw) continue;
            if (cell->data[sy * mw + sx] != 0) {
              uint8_t* p = fb.PixelAt(x, y);
              p[0] = static_cast<uint8_t>(std::min(255, p[0] + 96));
            }
          }
        }
        rep.mask_overlaid = true;
      }
    } else if (panel.role == PanelRole::kSidebar) {
      auto t = dataset.GetTensor(panel.tensor);
      if (!t.ok() || row >= (*t)->NumSamples()) continue;
      auto cell = (*t)->Read(row);
      if (!cell.ok() || cell->shape.IsEmptySample()) continue;
      if (panel.htype.kind == tsf::HtypeKind::kText) {
        rep.label_texts.push_back(panel.tensor + ": " + cell->AsString());
      } else if (panel.htype.kind == tsf::HtypeKind::kClassLabel) {
        rep.label_texts.push_back(panel.tensor + ": " +
                                  std::to_string(cell->AsInt()));
      }
    }
  }
  return fb;
}

ByteBuffer ToPpm(const Framebuffer& fb) {
  std::string header = "P6\n" + std::to_string(fb.width) + " " +
                       std::to_string(fb.height) + "\n255\n";
  ByteBuffer out = BufferFromString(header);
  out.reserve(out.size() + fb.width * fb.height * 3);
  for (uint64_t i = 0; i < fb.width * fb.height; ++i) {
    out.push_back(fb.rgba[i * 4]);
    out.push_back(fb.rgba[i * 4 + 1]);
    out.push_back(fb.rgba[i * 4 + 2]);
  }
  return out;
}

}  // namespace dl::viz
