#ifndef DEEPLAKE_VIZ_VISUALIZER_H_
#define DEEPLAKE_VIZ_VISUALIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "tsf/dataset.h"
#include "util/json.h"

namespace dl::viz {

/// The visualization engine (paper §4.3), minus the final WebGL blit: an
/// htype-driven layout planner, a downsample-pyramid builder (hidden
/// tensors), and a software compositor that renders rows — image plus
/// bbox/mask/label overlays — into RGBA framebuffers, streaming only the
/// data the viewport needs.

/// Role a tensor plays in the layout: primary tensors (image/video/audio)
/// "are displayed first, while secondary data and annotations ... are
/// overlayed" (§4.3).
enum class PanelRole { kPrimary, kOverlay, kSidebar };

struct Panel {
  std::string tensor;
  tsf::Htype htype;
  PanelRole role = PanelRole::kSidebar;
  /// Sequences get a player with frame scrubbing (§4.3).
  bool sequence_view = false;
};

/// The render plan a browser client would receive.
struct LayoutPlan {
  std::vector<Panel> panels;

  const Panel* primary() const {
    for (const auto& p : panels) {
      if (p.role == PanelRole::kPrimary) return &p;
    }
    return nullptr;
  }
  Json ToJson() const;
};

/// Derives the layout from the dataset's htypes. Hidden tensors are
/// excluded; the first image/video/audio tensor becomes the primary panel.
LayoutPlan PlanLayout(const tsf::Dataset& dataset);

// ---------------------------------------------------------------------------
// Downsample pyramid (hidden tensors, §3.4)
// ---------------------------------------------------------------------------

/// Builds `levels` hidden tensors `_pyr/<name>/<level>`, each a 2x
/// box-filter downsample of the previous, enabling zoomed-out browsing
/// without fetching full-resolution chunks. Returns the created tensor
/// names.
Result<std::vector<std::string>> BuildPyramid(tsf::Dataset& dataset,
                                              const std::string& tensor,
                                              int levels);

/// Name of the pyramid tensor for a level (level >= 1).
std::string PyramidTensorName(const std::string& tensor, int level);

// ---------------------------------------------------------------------------
// Compositor
// ---------------------------------------------------------------------------

/// RGBA8 framebuffer.
struct Framebuffer {
  uint64_t width = 0;
  uint64_t height = 0;
  ByteBuffer rgba;  // width * height * 4

  uint8_t* PixelAt(uint64_t x, uint64_t y) {
    return rgba.data() + (y * width + x) * 4;
  }
};

struct RenderOptions {
  uint64_t viewport_width = 512;
  uint64_t viewport_height = 512;
  /// Source-image window to show (zoom/pan); zeros = whole image.
  uint64_t src_x = 0, src_y = 0, src_w = 0, src_h = 0;
  /// Use pyramid levels when zoomed out (needs BuildPyramid).
  bool use_pyramid = true;
  /// For sequence tensors: which step of the sequence to show.
  uint64_t sequence_position = 0;
};

/// What the renderer drew — the structured overlay report a UI would bind
/// tooltips to.
struct RenderReport {
  uint64_t row = 0;
  std::string primary_tensor;
  int pyramid_level_used = 0;
  uint64_t boxes_drawn = 0;
  bool mask_overlaid = false;
  std::vector<std::string> label_texts;
  Json ToJson() const;
};

/// Renders one dataset row per the layout: the primary image resampled
/// (nearest) into the viewport, bbox outlines, binary-mask tint, and label
/// side-data collected into the report.
Result<Framebuffer> RenderRow(tsf::Dataset& dataset, const LayoutPlan& plan,
                              uint64_t row, const RenderOptions& options,
                              RenderReport* report);

/// Serializes a framebuffer as binary PPM (P6, RGB) for the examples.
ByteBuffer ToPpm(const Framebuffer& fb);

}  // namespace dl::viz

#endif  // DEEPLAKE_VIZ_VISUALIZER_H_
