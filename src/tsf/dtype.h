#ifndef DEEPLAKE_TSF_DTYPE_H_
#define DEEPLAKE_TSF_DTYPE_H_

#include <cstdint>
#include <string_view>

#include "util/result.h"

namespace dl::tsf {

/// Element types of tensors — the NumPy dtype vocabulary the paper's format
/// stores (§3.3 "dtype as seen in NumPy").
enum class DType : uint8_t {
  kBool = 0,
  kUInt8 = 1,
  kInt8 = 2,
  kUInt16 = 3,
  kInt16 = 4,
  kUInt32 = 5,
  kInt32 = 6,
  kUInt64 = 7,
  kInt64 = 8,
  kFloat32 = 9,
  kFloat64 = 10,
};

/// Bytes per element.
constexpr size_t DTypeSize(DType t) {
  switch (t) {
    case DType::kBool:
    case DType::kUInt8:
    case DType::kInt8:
      return 1;
    case DType::kUInt16:
    case DType::kInt16:
      return 2;
    case DType::kUInt32:
    case DType::kInt32:
    case DType::kFloat32:
      return 4;
    case DType::kUInt64:
    case DType::kInt64:
    case DType::kFloat64:
      return 8;
  }
  return 1;
}

constexpr bool IsFloating(DType t) {
  return t == DType::kFloat32 || t == DType::kFloat64;
}
constexpr bool IsSigned(DType t) {
  return t == DType::kInt8 || t == DType::kInt16 || t == DType::kInt32 ||
         t == DType::kInt64 || IsFloating(t);
}

std::string_view DTypeName(DType t);
Result<DType> DTypeFromName(std::string_view name);

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_DTYPE_H_
