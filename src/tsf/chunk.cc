#include "tsf/chunk.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/macros.h"

namespace dl::tsf {

namespace {
constexpr uint8_t kMagic[4] = {'D', 'L', 'C', '1'};
constexpr uint8_t kVersion = 1;
}  // namespace

compress::CodecContext ContextForSample(DType dtype,
                                        const TensorShape& shape) {
  compress::CodecContext ctx;
  size_t elem = DTypeSize(dtype);
  if (shape.ndim() >= 2) {
    uint64_t row = elem;
    for (size_t d = 1; d < shape.ndim(); ++d) row *= shape[d];
    ctx.row_stride = row;
    ctx.elem_size = static_cast<uint32_t>(
        shape.ndim() >= 3 ? shape[shape.ndim() - 1] * elem : elem);
  } else {
    ctx.row_stride = 0;
    ctx.elem_size = static_cast<uint32_t>(elem);
  }
  return ctx;
}

// ---------------------------------------------------------------------------
// ChunkHeader
// ---------------------------------------------------------------------------

void ChunkHeader::SampleRange(size_t i, uint64_t* offset,
                              uint64_t* len) const {
  uint64_t off = payload_offset;
  for (size_t k = 0; k < i; ++k) off += stored_lens[k];
  *offset = off;
  *len = stored_lens[i];
}

Result<uint32_t> ChunkHeader::PeekHeaderLen(ByteView prefix) {
  if (prefix.size() < kFixedPrefix) {
    return Status::Corruption("chunk: prefix too short");
  }
  if (std::memcmp(prefix.data(), kMagic, 4) != 0) {
    return Status::Corruption("chunk: bad magic");
  }
  if (prefix[4] != kVersion) {
    return Status::Corruption("chunk: unsupported version");
  }
  return DecodeFixed32(prefix.data() + 8);
}

Result<ChunkHeader> ChunkHeader::Parse(ByteView chunk_prefix) {
  DL_ASSIGN_OR_RETURN(uint32_t header_len, PeekHeaderLen(chunk_prefix));
  if (chunk_prefix.size() < kFixedPrefix + header_len) {
    return Status::Corruption("chunk: truncated header");
  }
  ChunkHeader h;
  h.dtype = static_cast<DType>(chunk_prefix[5]);
  h.sample_compression =
      static_cast<compress::Compression>(chunk_prefix[6]);
  h.chunk_compression =
      static_cast<compress::Compression>(chunk_prefix[7]);
  Decoder dec{chunk_prefix.subview(kFixedPrefix, header_len)};
  DL_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
  h.stored_lens.reserve(n);
  h.shapes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DL_ASSIGN_OR_RETURN(uint64_t len, dec.GetVarint64());
    DL_ASSIGN_OR_RETURN(TensorShape shape, TensorShape::Decode(dec));
    h.stored_lens.push_back(len);
    h.shapes.push_back(std::move(shape));
  }
  h.payload_offset = kFixedPrefix + header_len;
  return h;
}

// ---------------------------------------------------------------------------
// ChunkBuilder
// ---------------------------------------------------------------------------

ChunkBuilder::ChunkBuilder(DType dtype,
                           compress::Compression sample_compression,
                           compress::Compression chunk_compression)
    : dtype_(dtype),
      sample_compression_(sample_compression),
      chunk_compression_(chunk_compression) {}

Status ChunkBuilder::Append(const Sample& sample) {
  DL_RETURN_IF_ERROR(sample.Validate());
  if (sample_compression_ == compress::Compression::kNone ||
      sample.data.empty()) {
    AppendBytes(payload_, ByteView(sample.data));
    stored_lens_.push_back(sample.data.size());
  } else {
    compress::CodecContext ctx = ContextForSample(dtype_, sample.shape);
    DL_ASSIGN_OR_RETURN(
        ByteBuffer frame,
        compress::CompressBytes(sample_compression_, ByteView(sample.data),
                                ctx));
    stored_lens_.push_back(frame.size());
    AppendBytes(payload_, ByteView(frame));
  }
  shapes_.push_back(sample.shape);
  return Status::OK();
}

Status ChunkBuilder::AppendPrecompressed(ByteView frame,
                                         const TensorShape& shape) {
  if (sample_compression_ == compress::Compression::kNone) {
    return Status::FailedPrecondition(
        "chunk: precompressed append requires sample compression");
  }
  AppendBytes(payload_, frame);
  stored_lens_.push_back(frame.size());
  shapes_.push_back(shape);
  return Status::OK();
}

Result<Sample> ChunkBuilder::ReadBuffered(size_t local_index) const {
  if (local_index >= shapes_.size()) {
    return Status::OutOfRange("chunk builder: no buffered sample " +
                              std::to_string(local_index));
  }
  uint64_t off = 0;
  for (size_t k = 0; k < local_index; ++k) off += stored_lens_[k];
  ByteView stored = ByteView(payload_).subview(off, stored_lens_[local_index]);
  // dllint-ok(hot-path-copy): payload_ is the builder's live buffer and
  // the next Append may
  // reallocate it, so a borrowed view would dangle. ReadBuffered only serves
  // read-your-own-writes before Seal — never the epoch hot loop.
  return DecodeStoredSample(Slice::CopyOf(stored), sample_compression_,
                            dtype_, shapes_[local_index]);
}

Result<ByteBuffer> ChunkBuilder::Finish() {
  ByteBuffer header;
  PutVarint64(header, shapes_.size());
  for (size_t i = 0; i < shapes_.size(); ++i) {
    PutVarint64(header, stored_lens_[i]);
    shapes_[i].Encode(header);
  }

  ByteBuffer out;
  out.reserve(ChunkHeader::kFixedPrefix + header.size() + payload_.size() +
              4);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(dtype_));
  out.push_back(static_cast<uint8_t>(sample_compression_));
  out.push_back(static_cast<uint8_t>(chunk_compression_));
  PutFixed32(out, static_cast<uint32_t>(header.size()));
  AppendBytes(out, ByteView(header));

  if (chunk_compression_ == compress::Compression::kNone) {
    AppendBytes(out, ByteView(payload_));
  } else {
    compress::CodecContext ctx;
    ctx.elem_size = static_cast<uint32_t>(DTypeSize(dtype_));
    DL_ASSIGN_OR_RETURN(
        ByteBuffer frame,
        compress::CompressBytes(chunk_compression_, ByteView(payload_), ctx));
    AppendBytes(out, ByteView(frame));
  }
  PutFixed32(out, Crc32c(ByteView(out)));

  payload_.clear();
  stored_lens_.clear();
  shapes_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Chunk
// ---------------------------------------------------------------------------

Result<Chunk> Chunk::Parse(Slice bytes, bool verify_checksum) {
  if (bytes.size() < ChunkHeader::kFixedPrefix + 4) {
    return Status::Corruption("chunk: object too small");
  }
  if (verify_checksum) {
    uint32_t stored_crc = DecodeFixed32(bytes.data() + bytes.size() - 4);
    uint32_t actual_crc = Crc32c(ByteView(bytes.data(), bytes.size() - 4));
    if (stored_crc != actual_crc) {
      return Status::Corruption("chunk: CRC mismatch");
    }
  }
  DL_ASSIGN_OR_RETURN(ChunkHeader header, ChunkHeader::Parse(bytes));
  Slice decompressed;
  if (header.chunk_compression != compress::Compression::kNone) {
    ByteView frame = bytes.view().subview(
        header.payload_offset,
        bytes.size() - header.payload_offset - 4);
    // Pooled decode: the buffer returns to the arena when the last sample
    // slice referencing it drops.
    DL_ASSIGN_OR_RETURN(
        decompressed,
        compress::DecompressToSlice(header.chunk_compression, frame));
  }
  return Chunk(std::move(header), std::move(bytes), std::move(decompressed));
}

Slice Chunk::Payload() const {
  if (header_.chunk_compression != compress::Compression::kNone) {
    return decompressed_payload_;
  }
  return bytes_.subslice(header_.payload_offset,
                         bytes_.size() - header_.payload_offset - 4);
}

Result<Slice> Chunk::StoredBytes(size_t local_index) const {
  if (local_index >= header_.num_samples()) {
    return Status::OutOfRange("chunk: sample index " +
                              std::to_string(local_index) + " of " +
                              std::to_string(header_.num_samples()));
  }
  uint64_t off = 0;
  for (size_t k = 0; k < local_index; ++k) off += header_.stored_lens[k];
  return Payload().subslice(off, header_.stored_lens[local_index]);
}

Result<Sample> Chunk::ReadSample(size_t local_index) const {
  DL_ASSIGN_OR_RETURN(Slice stored, StoredBytes(local_index));
  return DecodeStoredSample(std::move(stored), header_.sample_compression,
                            header_.dtype, header_.shapes[local_index]);
}

Result<Sample> DecodeStoredSample(Slice stored,
                                  compress::Compression sample_compression,
                                  DType dtype, const TensorShape& shape) {
  Sample out;
  out.dtype = dtype;
  out.shape = shape;
  if (sample_compression == compress::Compression::kNone || stored.empty()) {
    // Zero copy: the sample views the stored bytes and shares their
    // keep-alive (the chunk's buffer, which may itself be the LRU entry).
    out.data = std::move(stored);
  } else {
    DL_ASSIGN_OR_RETURN(out.data, compress::DecompressToSlice(
                                      sample_compression, stored));
  }
  DL_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace dl::tsf
