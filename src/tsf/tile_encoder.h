#ifndef DEEPLAKE_TSF_TILE_ENCODER_H_
#define DEEPLAKE_TSF_TILE_ENCODER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "tsf/sample.h"
#include "util/bytes.h"
#include "util/result.h"

namespace dl::tsf {

/// Tile layout of one oversized sample (paper §3.4: "If a sample is larger
/// than the upper bound chunk size ... the sample is tiled into chunks
/// across spatial dimensions").
struct TileLayout {
  TensorShape sample_shape;          // full logical shape
  std::vector<uint64_t> tile_dims;   // per-dimension tile size
  std::vector<uint64_t> grid;        // per-dimension tile count
  std::vector<uint64_t> chunk_ids;   // row-major over the grid

  uint64_t num_tiles() const {
    uint64_t n = 1;
    for (uint64_t g : grid) n *= g;
    return n;
  }

  /// Shape of the tile at grid coordinate (edge tiles may be smaller).
  TensorShape TileShapeAt(const std::vector<uint64_t>& coord) const;
};

/// Computes a tile grid such that each tile's raw bytes stay under
/// `max_tile_bytes`, splitting the leading (spatial) dimensions first.
TileLayout ComputeTileLayout(const TensorShape& shape, size_t dtype_size,
                             uint64_t max_tile_bytes);

/// Extracts the tile at `coord` from the full sample bytes.
ByteBuffer ExtractTile(const Sample& sample, const TileLayout& layout,
                       const std::vector<uint64_t>& coord);

/// Writes `tile` into the right region of `assembled` (full-sample buffer).
void PlaceTile(ByteBuffer& assembled, const TensorShape& full_shape,
               size_t dtype_size, const TileLayout& layout,
               const std::vector<uint64_t>& coord, ByteView tile);

/// Per-tensor index of tiled samples: sample index → layout.
class TileEncoder {
 public:
  bool IsTiled(uint64_t sample_index) const {
    return entries_.count(sample_index) > 0;
  }
  const TileLayout* Get(uint64_t sample_index) const {
    auto it = entries_.find(sample_index);
    return it == entries_.end() ? nullptr : &it->second;
  }
  void Set(uint64_t sample_index, TileLayout layout) {
    entries_[sample_index] = std::move(layout);
  }
  void Remove(uint64_t sample_index) { entries_.erase(sample_index); }
  size_t num_tiled_samples() const { return entries_.size(); }

  ByteBuffer Serialize() const;
  static Result<TileEncoder> Deserialize(ByteView bytes);

 private:
  std::map<uint64_t, TileLayout> entries_;
};

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_TILE_ENCODER_H_
