#include "tsf/tile_encoder.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"
#include "util/macros.h"

namespace dl::tsf {

namespace {

/// Element strides of a row-major array.
std::vector<uint64_t> Strides(const TensorShape& shape) {
  std::vector<uint64_t> strides(shape.ndim(), 1);
  for (size_t d = shape.ndim(); d-- > 1;) {
    strides[d - 1] = strides[d] * shape[d];
  }
  return strides;
}

}  // namespace

TensorShape TileLayout::TileShapeAt(
    const std::vector<uint64_t>& coord) const {
  std::vector<uint64_t> dims(coord.size());
  for (size_t d = 0; d < coord.size(); ++d) {
    uint64_t start = coord[d] * tile_dims[d];
    dims[d] = std::min(tile_dims[d], sample_shape[d] - start);
  }
  return TensorShape(std::move(dims));
}

TileLayout ComputeTileLayout(const TensorShape& shape, size_t dtype_size,
                             uint64_t max_tile_bytes) {
  TileLayout layout;
  layout.sample_shape = shape;
  layout.tile_dims = shape.dims();
  // Only the leading spatial dimensions are split (§3.4); channel-like
  // trailing dims stay whole so tiles remain pixel-aligned.
  size_t splittable = shape.ndim() >= 3 ? 2 : (shape.ndim() >= 1 ? 1 : 0);
  auto tile_bytes = [&] {
    uint64_t n = dtype_size;
    for (uint64_t d : layout.tile_dims) n *= d;
    return n;
  };
  while (tile_bytes() > max_tile_bytes) {
    // Halve the largest splittable dim; stop when nothing can shrink.
    size_t best = SIZE_MAX;
    for (size_t d = 0; d < splittable; ++d) {
      if (layout.tile_dims[d] > 1 &&
          (best == SIZE_MAX || layout.tile_dims[d] > layout.tile_dims[best])) {
        best = d;
      }
    }
    if (best == SIZE_MAX) break;
    layout.tile_dims[best] = (layout.tile_dims[best] + 1) / 2;
  }
  layout.grid.resize(shape.ndim());
  for (size_t d = 0; d < shape.ndim(); ++d) {
    layout.grid[d] =
        layout.tile_dims[d] == 0
            ? 1
            : (shape[d] + layout.tile_dims[d] - 1) / layout.tile_dims[d];
  }
  return layout;
}

namespace {

/// Copies between the full sample buffer and a tile buffer. `to_tile`
/// selects direction. Generic n-d odometer over all dims but the last;
/// the innermost run is contiguous in both buffers.
void CopyTile(uint8_t* full, const TensorShape& full_shape,
              size_t dtype_size, const TileLayout& layout,
              const std::vector<uint64_t>& coord, uint8_t* tile,
              bool to_tile) {
  size_t ndim = full_shape.ndim();
  if (ndim == 0) return;
  TensorShape tile_shape = layout.TileShapeAt(coord);
  std::vector<uint64_t> full_strides = Strides(full_shape);
  std::vector<uint64_t> tile_strides = Strides(tile_shape);
  std::vector<uint64_t> start(ndim);
  for (size_t d = 0; d < ndim; ++d) start[d] = coord[d] * layout.tile_dims[d];

  size_t inner = ndim - 1;
  uint64_t run_elems = tile_shape[inner];
  uint64_t run_bytes = run_elems * dtype_size;

  // Odometer over tile-local coordinates of dims [0, inner); idx[inner]
  // stays 0 and the innermost dimension is copied as one contiguous run.
  std::vector<uint64_t> idx(ndim, 0);
  while (true) {
    uint64_t full_off = 0;
    uint64_t tile_off = 0;
    for (size_t d = 0; d < ndim; ++d) {
      full_off += (start[d] + idx[d]) * full_strides[d];
      tile_off += idx[d] * tile_strides[d];
    }
    uint8_t* fp = full + full_off * dtype_size;
    uint8_t* tp = tile + tile_off * dtype_size;
    if (to_tile) {
      std::memcpy(tp, fp, run_bytes);
    } else {
      std::memcpy(fp, tp, run_bytes);
    }
    if (ndim == 1) break;
    ptrdiff_t d = static_cast<ptrdiff_t>(inner) - 1;
    while (d >= 0) {
      if (++idx[d] < tile_shape[d]) break;
      idx[d] = 0;
      --d;
    }
    if (d < 0) break;  // all tile rows copied
  }
}

}  // namespace

ByteBuffer ExtractTile(const Sample& sample, const TileLayout& layout,
                       const std::vector<uint64_t>& coord) {
  TensorShape tile_shape = layout.TileShapeAt(coord);
  size_t dtype_size = DTypeSize(sample.dtype);
  ByteBuffer out(tile_shape.NumElements() * dtype_size);
  CopyTile(const_cast<uint8_t*>(sample.data.data()), sample.shape,
           dtype_size, layout, coord, out.data(), /*to_tile=*/true);
  return out;
}

void PlaceTile(ByteBuffer& assembled, const TensorShape& full_shape,
               size_t dtype_size, const TileLayout& layout,
               const std::vector<uint64_t>& coord, ByteView tile) {
  CopyTile(assembled.data(), full_shape, dtype_size, layout, coord,
           const_cast<uint8_t*>(tile.data()), /*to_tile=*/false);
}

ByteBuffer TileEncoder::Serialize() const {
  ByteBuffer out;
  PutVarint64(out, entries_.size());
  for (const auto& [idx, layout] : entries_) {
    PutVarint64(out, idx);
    layout.sample_shape.Encode(out);
    for (uint64_t d : layout.tile_dims) PutVarint64(out, d);
    for (uint64_t g : layout.grid) PutVarint64(out, g);
    PutVarint64(out, layout.chunk_ids.size());
    uint64_t prev = 0;
    for (uint64_t id : layout.chunk_ids) {
      PutVarintSigned64(out, static_cast<int64_t>(id - prev));
      prev = id;
    }
  }
  return out;
}

Result<TileEncoder> TileEncoder::Deserialize(ByteView bytes) {
  Decoder dec{bytes};
  DL_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
  TileEncoder enc;
  for (uint64_t i = 0; i < n; ++i) {
    DL_ASSIGN_OR_RETURN(uint64_t idx, dec.GetVarint64());
    TileLayout layout;
    DL_ASSIGN_OR_RETURN(layout.sample_shape, TensorShape::Decode(dec));
    size_t ndim = layout.sample_shape.ndim();
    layout.tile_dims.resize(ndim);
    for (auto& d : layout.tile_dims) {
      DL_ASSIGN_OR_RETURN(d, dec.GetVarint64());
    }
    layout.grid.resize(ndim);
    for (auto& g : layout.grid) {
      DL_ASSIGN_OR_RETURN(g, dec.GetVarint64());
    }
    DL_ASSIGN_OR_RETURN(uint64_t count, dec.GetVarint64());
    layout.chunk_ids.resize(count);
    uint64_t prev = 0;
    for (auto& id : layout.chunk_ids) {
      DL_ASSIGN_OR_RETURN(int64_t delta, dec.GetVarintSigned64());
      prev += static_cast<uint64_t>(delta);
      id = prev;
    }
    enc.entries_[idx] = std::move(layout);
  }
  if (!dec.done()) return Status::Corruption("tile encoder: trailing bytes");
  return enc;
}

}  // namespace dl::tsf
