#ifndef DEEPLAKE_TSF_SHAPE_H_
#define DEEPLAKE_TSF_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/coding.h"
#include "util/macros.h"

namespace dl::tsf {

/// Shape of one sample (not including the index/batch dimension). Tensors
/// are *ragged* (§3.2): every sample carries its own shape. An empty shape
/// denotes a scalar sample; a shape with any zero dim denotes an empty
/// sample (used for sparse/out-of-bounds assignment padding, §3.5).
class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<uint64_t> dims) : dims_(dims) {}
  explicit TensorShape(std::vector<uint64_t> dims) : dims_(std::move(dims)) {}

  size_t ndim() const { return dims_.size(); }
  uint64_t operator[](size_t i) const { return dims_[i]; }
  const std::vector<uint64_t>& dims() const { return dims_; }

  /// Product of dims; 1 for scalars, 0 if any dim is 0.
  uint64_t NumElements() const {
    uint64_t n = 1;
    for (uint64_t d : dims_) n *= d;
    return n;
  }

  bool IsEmptySample() const {
    for (uint64_t d : dims_) {
      if (d == 0) return true;
    }
    return false;
  }

  /// "(640, 480, 3)"
  std::string ToString() const;

  void Encode(ByteBuffer& out) const {
    PutVarint64(out, dims_.size());
    for (uint64_t d : dims_) PutVarint64(out, d);
  }

  static Result<TensorShape> Decode(Decoder& dec) {
    DL_ASSIGN_OR_RETURN(uint64_t ndim, dec.GetVarint64());
    if (ndim > 32) return Status::Corruption("shape: ndim too large");
    std::vector<uint64_t> dims(ndim);
    for (auto& d : dims) {
      DL_ASSIGN_OR_RETURN(d, dec.GetVarint64());
    }
    return TensorShape(std::move(dims));
  }

  friend bool operator==(const TensorShape& a, const TensorShape& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<uint64_t> dims_;
};

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_SHAPE_H_
