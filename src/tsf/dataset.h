#ifndef DEEPLAKE_TSF_DATASET_H_
#define DEEPLAKE_TSF_DATASET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/storage.h"
#include "tsf/tensor.h"
#include "util/json.h"
#include "util/rng.h"

namespace dl::tsf {

/// Resolves `link[...]` tensor URLs to raw bytes (paper §4.5: linked
/// tensors store pointers to one or multiple cloud providers).
class LinkResolver {
 public:
  virtual ~LinkResolver() = default;
  /// The returned Slice keeps its backing buffer alive (util/buffer.h).
  virtual Result<Slice> Fetch(const std::string& url) = 0;
};

/// Resolver backed by a registry of storage providers: URL
/// "scheme://key/path" reads key "key/path" from the provider registered
/// for "scheme".
class StoreLinkResolver : public LinkResolver {
 public:
  void Register(const std::string& scheme, storage::StoragePtr store) {
    stores_[scheme] = std::move(store);
  }
  Result<Slice> Fetch(const std::string& url) override;

 private:
  std::map<std::string, storage::StoragePtr> stores_;
};

/// A Deep Lake dataset: parallel tensor columns over one storage root
/// (paper §3.1). A *sample* (row) is the set of tensor cells at one index;
/// cells are logically independent, enabling partial tensor access.
///
/// Tensors whose names contain '/' form syntactic groups
/// ("frames/camera_left"). A hidden `_sample_id` tensor carries stable ids
/// used by version-control merge (paper §4.2).
class Dataset {
 public:
  struct Options {
    std::string description;
    /// Generate the hidden `_sample_id` tensor on Append (merge support).
    bool with_sample_ids = true;
  };

  /// Creates a new dataset at the storage root (fails if one exists).
  static Result<std::shared_ptr<Dataset>> Create(storage::StoragePtr store,
                                                 Options options);
  static Result<std::shared_ptr<Dataset>> Create(storage::StoragePtr store) {
    return Create(std::move(store), Options());
  }
  /// Opens an existing dataset.
  static Result<std::shared_ptr<Dataset>> Open(storage::StoragePtr store);

  static constexpr char kMetaKey[] = "dataset_meta.json";
  static constexpr char kSampleIdTensor[] = "_sample_id";

  // ---- Schema ----

  /// Declares a new tensor column. Schema changes are recorded in the
  /// provenance log (schema evolution is versioned like data, §3.1).
  Result<Tensor*> CreateTensor(const std::string& name,
                               const TensorOptions& options = {});
  Result<Tensor*> GetTensor(const std::string& name);
  bool HasTensor(const std::string& name) const {
    return tensors_.count(name) > 0;
  }
  /// Visible tensor names, sorted; hidden ones included on request.
  std::vector<std::string> TensorNames(bool include_hidden = false) const;
  /// Top-level group names (prefix before the first '/').
  std::vector<std::string> GroupNames() const;
  /// Tensors under "group/...".
  std::vector<std::string> TensorsInGroup(const std::string& group) const;

  // ---- Rows ----

  /// Length of the longest visible tensor.
  uint64_t NumRows() const;

  /// Appends one row: named cells land in their tensors; tensors missing
  /// from the row get an empty cell, keeping all columns aligned.
  Status Append(const std::map<std::string, Sample>& row);

  /// Append with an explicit sample id instead of a generated one. Version-
  /// control merge uses this so the same logical sample keeps its id across
  /// branches (paper §4.2).
  Status AppendWithId(const std::map<std::string, Sample>& row, uint64_t id);

  /// Raw 64-bit sample id at `index` (0 if sample ids are disabled).
  Result<uint64_t> SampleIdAt(uint64_t index);

  /// Reads all visible cells at `index`.
  Result<std::map<std::string, Sample>> ReadRow(uint64_t index);

  /// Appends a URL into a `link[...]` tensor.
  Status AppendLink(const std::string& tensor, const std::string& url);
  /// Reads a linked cell, resolving the URL to bytes via `resolver`.
  Result<Slice> ReadLinked(const std::string& tensor, uint64_t index,
                           LinkResolver& resolver);

  /// Flushes all tensors and persists dataset metadata.
  Status Flush();

  /// Appends a human-readable provenance event to dataset_meta.json
  /// ("created tensor images", "materialized view ...", §4.5 lineage).
  void LogProvenance(const std::string& event);
  const Json& meta() const { return meta_; }
  storage::StoragePtr store() const { return store_; }

 private:
  explicit Dataset(storage::StoragePtr store);

  Status PersistMeta();

  storage::StoragePtr store_;
  Json meta_;
  std::map<std::string, std::unique_ptr<Tensor>> tensors_;
  Rng id_rng_;
  bool with_sample_ids_ = true;
};

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_DATASET_H_
