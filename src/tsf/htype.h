#ifndef DEEPLAKE_TSF_HTYPE_H_
#define DEEPLAKE_TSF_HTYPE_H_

#include <string>
#include <string_view>

#include "compress/codec.h"
#include "tsf/dtype.h"
#include "util/result.h"

namespace dl::tsf {

/// Base htype kinds (paper §3.3): expectations on a tensor's samples that
/// make framework interop, sanity checks and visualization layout possible.
enum class HtypeKind : uint8_t {
  kGeneric = 0,
  kImage = 1,
  kVideo = 2,
  kAudio = 3,
  kClassLabel = 4,
  kBBox = 5,
  kBinaryMask = 6,
  kText = 7,
  kEmbedding = 8,
  kDicom = 9,
};

/// A parsed htype, including the meta-type wrappers from §3.3:
///   "image"            -> {kind=kImage}
///   "sequence[image]"  -> {kind=kImage, is_sequence=true}
///   "link[image]"      -> {kind=kImage, is_link=true}
struct Htype {
  HtypeKind kind = HtypeKind::kGeneric;
  bool is_sequence = false;
  bool is_link = false;

  /// Canonical string form ("sequence[image]").
  std::string ToString() const;

  /// Validation expectations for this htype.
  struct Expectations {
    /// Required sample ndim; -1 means "any".
    int ndim = -1;
    /// Alternative accepted ndim (e.g. grayscale images); -1 means none.
    int alt_ndim = -1;
    /// Required dtype; dtype of the tensor must equal this if set.
    bool has_dtype = false;
    DType dtype = DType::kUInt8;
  };
  Expectations expectations() const;

  /// Sensible defaults the dataset applies when the user does not override.
  DType default_dtype() const;
  compress::Compression default_sample_compression() const;
  compress::Compression default_chunk_compression() const;

  /// Videos are exempt from tiling (§3.4: "The only exception to tiling is
  /// videos") because frame->index mapping and key-frame decode need the
  /// sample contiguous.
  bool exempt_from_tiling() const { return kind == HtypeKind::kVideo; }

  friend bool operator==(const Htype& a, const Htype& b) {
    return a.kind == b.kind && a.is_sequence == b.is_sequence &&
           a.is_link == b.is_link;
  }
};

std::string_view HtypeKindName(HtypeKind k);

/// Parses "generic", "image", "sequence[image]", "link[image]", ....
Result<Htype> ParseHtype(std::string_view text);

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_HTYPE_H_
