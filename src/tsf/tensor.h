#ifndef DEEPLAKE_TSF_TENSOR_H_
#define DEEPLAKE_TSF_TENSOR_H_

#include <memory>
#include <string>

#include "storage/storage.h"
#include "util/thread_annotations.h"
#include "tsf/chunk.h"
#include "tsf/chunk_encoder.h"
#include "tsf/sample.h"
#include "tsf/shape_encoder.h"
#include "tsf/tensor_meta.h"
#include "tsf/tile_encoder.h"

namespace dl::tsf {

/// One column of a Deep Lake dataset: a typed, ragged, chunked tensor bound
/// to a storage prefix (paper §3).
///
/// Storage layout under the dataset root:
///   tensors/<name>/tensor_meta.json
///   tensors/<name>/chunk_encoder.bin
///   tensors/<name>/shape_encoder.bin
///   tensors/<name>/tile_encoder.bin
///   tensors/<name>/chunks/<hex chunk id>
///
/// Appends buffer into an open chunk; `Flush` seals it and persists the
/// encoders. Reads see both flushed and buffered samples. Not thread-safe
/// for concurrent writes; concurrent reads are safe after Flush (the
/// streaming dataloader only touches flushed state).
class Tensor {
 public:
  /// Creates a new tensor (fails if one exists at this name).
  static Result<std::unique_ptr<Tensor>> Create(storage::StoragePtr store,
                                                const std::string& name,
                                                const TensorOptions& options);

  /// Opens an existing tensor.
  static Result<std::unique_ptr<Tensor>> Open(storage::StoragePtr store,
                                              const std::string& name);

  const TensorMeta& meta() const { return meta_; }
  const std::string& name() const { return meta_.name; }

  /// Total samples (flushed + buffered in the open chunk).
  uint64_t NumSamples() const;

  /// Appends one sample. Oversized samples (raw bytes > max_chunk_bytes)
  /// are tiled across spatial dimensions unless the htype is exempt
  /// (video). Cheap samples land in the open chunk buffer.
  Status Append(const Sample& sample);

  /// Ingestion fast path (§5): appends a frame already compressed with the
  /// tensor's sample compression, skipping decode+re-encode. `shape` is the
  /// decoded logical shape.
  Status AppendPrecompressed(ByteView frame, const TensorShape& shape);

  /// Replaces sample `index` in place (§3.5 random-access writes:
  /// annotators, model predictions). Writing past the end pads the gap with
  /// empty samples — the sparse/out-of-bounds assignment behaviour.
  Status Update(uint64_t index, const Sample& sample);

  /// Replaces samples [start, start+samples.size()) in place, rebuilding
  /// each affected chunk ONCE — per-sample Update rewrites its whole chunk
  /// per call, which is quadratic over a dense range. All indices must
  /// already exist (no sparse tail). Oversized and tiled samples fall back
  /// to the per-sample path. The MVCC rebase replay depends on this: its
  /// modified ranges are chunk-granular, so dense whole-chunk rewrites are
  /// the common case.
  Status UpdateContiguous(uint64_t start, const std::vector<Sample>& samples);

  /// Reads one sample.
  Result<Sample> Read(uint64_t index);

  /// Reads a sub-region of a *tiled* sample fetching only overlapping
  /// tiles; falls back to a full read + crop for untiled samples.
  /// `starts`/`sizes` must have one entry per dimension.
  Result<Sample> ReadRegion(uint64_t index,
                            const std::vector<uint64_t>& starts,
                            const std::vector<uint64_t>& sizes);

  /// Shape without fetching data (served by the shape encoder).
  Result<TensorShape> ShapeAt(uint64_t index) const;

  /// Seals the open chunk and persists meta + encoders.
  Status Flush();

  /// Re-packs fragmented chunks into dense ~max_chunk_bytes chunks
  /// (paper §3.5 "on-the-fly re-chunking algorithm"). Returns the number of
  /// chunks after optimization.
  Result<size_t> Rechunk();

  // ---- Streaming/introspection API (used by the dataloader & benches) ----

  const ChunkEncoder& chunk_encoder() const { return chunk_encoder_; }
  const ShapeEncoder& shape_encoder() const { return shape_encoder_; }
  const TileEncoder& tile_encoder() const { return tile_encoder_; }
  storage::StoragePtr store() const { return store_; }

  /// Storage key of a chunk object.
  std::string ChunkKey(uint64_t chunk_id) const;
  std::string MetaKey() const;

  /// Number of samples buffered in the open (unflushed) chunk.
  uint64_t buffered_samples() const {
    return open_chunk_ ? open_chunk_->num_samples() : 0;
  }

 private:
  Tensor(storage::StoragePtr store, TensorMeta meta);

  Status AppendInternal(const Sample& sample, ByteView precompressed);
  Status AppendTiled(const Sample& sample);
  Status RewriteSampleInChunk(uint64_t index, const Sample& sample);
  // Region copies write into a caller-owned staging buffer (`out_data`,
  // shaped `out_shape`); the caller seals the buffer into the result
  // Sample's immutable Slice once assembly finishes.
  static void CopyRegion(const Sample& source,
                         const std::vector<uint64_t>& starts,
                         const TensorShape& out_shape, uint8_t* out_data);
  static void CopyTileRegion(const Sample& tile, const TileLayout& layout,
                             const std::vector<uint64_t>& coord,
                             const std::vector<uint64_t>& starts,
                             const std::vector<uint64_t>& sizes,
                             const TensorShape& out_shape, uint8_t* out_data);
  Status SealOpenChunk();
  Result<std::shared_ptr<Chunk>> FetchChunk(uint64_t chunk_id);
  Result<Sample> AssembleTiled(uint64_t index, const TileLayout& layout);
  uint64_t NextChunkId() { return next_chunk_id_++; }
  Status PersistEncoders();

  storage::StoragePtr store_;
  TensorMeta meta_;
  ChunkEncoder chunk_encoder_;
  ShapeEncoder shape_encoder_;
  TileEncoder tile_encoder_;
  std::unique_ptr<ChunkBuilder> open_chunk_;
  uint64_t next_chunk_id_ = 0;

  // Single-slot cache of the most recently parsed chunk: sequential reads
  // decode each chunk once. Leaf lock: held only for the slot swap, never
  // across the store fetch or chunk parse.
  mutable Mutex cache_mu_{"tsf.tensor.cache_mu"};
  uint64_t cached_chunk_id_ DL_GUARDED_BY(cache_mu_) = 0;
  std::shared_ptr<Chunk> cached_chunk_ DL_GUARDED_BY(cache_mu_);
};

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_TENSOR_H_
