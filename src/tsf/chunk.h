#ifndef DEEPLAKE_TSF_CHUNK_H_
#define DEEPLAKE_TSF_CHUNK_H_

#include <cstdint>
#include <vector>

#include "compress/codec.h"
#include "tsf/sample.h"

namespace dl::tsf {

/// On-storage chunk layout (paper §3.4: "Chunks contain header information
/// such as byte ranges, shapes of the samples, and the sample data"):
///
///   [0..3]   magic "DLC1"
///   [4]      format version (1)
///   [5]      dtype
///   [6]      sample compression
///   [7]      chunk compression
///   [8..11]  u32 header_len H (bytes of the varint header that follows)
///   [12..12+H)  varint num_samples, then per sample:
///                 varint stored_len, varint ndim, ndim varint dims
///   [12+H..N-4)  payload (per-sample frames if sample-compressed,
///                concatenated raw bytes otherwise; the whole section is
///                one codec frame if chunk-compressed)
///   [N-4..N)  u32 CRC-32C of bytes [0, N-4)
///
/// The fixed 12-byte prefix lets a streaming reader learn the header size
/// with one small range request, then fetch exact sample byte ranges —
/// the primitive behind sparse-view streaming (§3.5, §4.4).
struct ChunkHeader {
  DType dtype = DType::kUInt8;
  compress::Compression sample_compression = compress::Compression::kNone;
  compress::Compression chunk_compression = compress::Compression::kNone;
  std::vector<uint64_t> stored_lens;   // per-sample stored byte length
  std::vector<TensorShape> shapes;     // per-sample logical shape
  uint64_t payload_offset = 0;         // first payload byte in the object

  size_t num_samples() const { return stored_lens.size(); }

  /// Byte range [offset, offset+len) of sample `i` within the chunk object.
  /// Only meaningful when chunk_compression == kNone.
  void SampleRange(size_t i, uint64_t* offset, uint64_t* len) const;

  /// Parses the fixed 12-byte prefix; returns the header length H.
  static Result<uint32_t> PeekHeaderLen(ByteView prefix);

  /// Parses the full header from the first 12+H bytes of the chunk.
  static Result<ChunkHeader> Parse(ByteView chunk_prefix);

  /// Size in bytes of the 12-byte fixed prefix.
  static constexpr size_t kFixedPrefix = 12;
};

/// Accumulates samples and serializes one chunk object.
class ChunkBuilder {
 public:
  ChunkBuilder(DType dtype, compress::Compression sample_compression,
               compress::Compression chunk_compression);

  /// Appends a validated sample. With sample compression the cost of the
  /// codec is paid here; the stored length is the compressed length.
  Status Append(const Sample& sample);

  /// Appends pre-compressed bytes directly (the §5 fast path: "if a raw
  /// image compression matches the tensor sample compression, the binary
  /// is directly copied into a chunk without additional decoding").
  Status AppendPrecompressed(ByteView frame, const TensorShape& shape);

  size_t num_samples() const { return shapes_.size(); }
  /// Current payload size (post-sample-compression, pre-chunk-compression).
  uint64_t payload_bytes() const { return payload_.size(); }
  bool empty() const { return shapes_.empty(); }

  /// Reads back a sample that is still buffered (not yet serialized). The
  /// returned sample owns a copy: the builder's live payload buffer can
  /// reallocate on the next Append, so handing out a view into it would
  /// dangle (the lifetime bug the pre-Slice deep copy silently masked).
  Result<Sample> ReadBuffered(size_t local_index) const;
  const TensorShape& BufferedShape(size_t local_index) const {
    return shapes_[local_index];
  }

  /// Serializes the chunk and resets the builder.
  Result<ByteBuffer> Finish();

 private:
  DType dtype_;
  compress::Compression sample_compression_;
  compress::Compression chunk_compression_;
  ByteBuffer payload_;
  std::vector<uint64_t> stored_lens_;
  std::vector<TensorShape> shapes_;
};

/// A fully-fetched, parsed chunk; verifies the CRC on parse.
///
/// Zero-copy: the chunk holds the fetched object as a Slice (typically a
/// view of the store's or LRU cache's buffer) and decodes samples as
/// subslices of it — uncompressed samples share the chunk's bytes, codec
/// output lands in pooled arena buffers (DESIGN.md §10).
class Chunk {
 public:
  /// Parses a complete chunk object. `verify_checksum` false skips the
  /// CRC pass (RocksDB-style ReadOptions::verify_checksums) — the
  /// streaming dataloader's hot path trusts the transport; writers and
  /// random-access reads keep verification on.
  static Result<Chunk> Parse(Slice bytes, bool verify_checksum = true);

  const ChunkHeader& header() const { return header_; }
  size_t num_samples() const { return header_.num_samples(); }

  /// Decodes sample `local_index` (decompressing as needed). The sample's
  /// data slice keeps the chunk's buffer (or the pooled decode buffer)
  /// alive on its own — the Chunk object may be destroyed first.
  Result<Sample> ReadSample(size_t local_index) const;

  /// Raw stored bytes of sample `local_index` (compressed frame when the
  /// chunk uses sample compression). Shares the chunk's keep-alive.
  Result<Slice> StoredBytes(size_t local_index) const;

 private:
  Chunk(ChunkHeader header, Slice bytes, Slice payload)
      : header_(std::move(header)),
        bytes_(std::move(bytes)),
        decompressed_payload_(std::move(payload)) {}

  /// Payload slice: either into `bytes_` (no chunk compression) or the
  /// pooled decompressed buffer.
  Slice Payload() const;

  ChunkHeader header_;
  // dllint-ok(slice-owner): both slices carry their keep-alive owner —
  // bytes_ pins the fetched chunk buffer, decompressed_payload_ pins the
  // pooled decompression buffer — so Chunk needs no separate Buffer member.
  Slice bytes_;
  Slice decompressed_payload_;  // non-empty iff chunk-compressed
};

/// Decodes one sample-compressed frame fetched via a range request, given
/// its logical shape and dtype (used by the sparse-view streaming path).
/// Uncompressed frames become the sample's data without a copy (the slice
/// keep-alive carries the source buffer); compressed frames decompress into
/// a pooled buffer.
Result<Sample> DecodeStoredSample(Slice stored,
                                  compress::Compression sample_compression,
                                  DType dtype, const TensorShape& shape);

/// Codec context appropriate for a sample of this shape/dtype: row stride =
/// bytes per leading-dimension slice, elem size = trailing dim (channels).
compress::CodecContext ContextForSample(DType dtype,
                                        const TensorShape& shape);

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_CHUNK_H_
