#ifndef DEEPLAKE_TSF_CHUNK_ENCODER_H_
#define DEEPLAKE_TSF_CHUNK_ENCODER_H_

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace dl::tsf {

/// One row of the chunk encoder: chunk `chunk_id` holds global sample
/// indices (previous row's last_index, last_index].
struct ChunkEntry {
  uint64_t last_index;  // inclusive global index of the chunk's last sample
  uint64_t chunk_id;    // storage name is Hex64(chunk_id)
};

/// The *chunk encoder* (paper §3.4): a compressed index map that preserves
/// the sample-index → chunk-id mapping per tensor. Rows are delta-coded on
/// serialization, so sequentially-allocated chunk ids and near-constant
/// samples-per-chunk cost ~2-4 bytes per chunk — the property behind the
/// paper's "150MB chunk encoder per 1PB tensor data" claim (reproduced by
/// bench_tbl_chunk_encoder_scale).
class ChunkEncoder {
 public:
  /// Resolution of a global sample index.
  struct Location {
    uint64_t chunk_id;
    size_t chunk_ordinal;      // position of the row in the encoder
    uint64_t local_index;      // index of the sample within the chunk
    uint64_t chunk_first;      // global index of the chunk's first sample
    uint64_t chunk_samples;    // number of samples in the chunk
  };

  ChunkEncoder() = default;

  /// Registers a new tail chunk holding the next `num_samples` samples.
  void AddChunk(uint64_t chunk_id, uint64_t num_samples);

  /// Extends the tail chunk by `additional` samples (open-chunk growth).
  void ExtendLastChunk(uint64_t additional);

  /// Resolves a global index; OutOfRange past the end.
  Result<Location> Find(uint64_t global_index) const;

  /// Total samples across all chunks.
  uint64_t num_samples() const {
    return entries_.empty() ? 0 : entries_.back().last_index + 1;
  }
  size_t num_chunks() const { return entries_.size(); }
  const std::vector<ChunkEntry>& entries() const { return entries_; }

  /// Points row `ordinal` at a rewritten chunk (in-place sample update).
  Status ReplaceChunkId(size_t ordinal, uint64_t new_chunk_id);

  /// Replaces the whole map (re-chunking / materialization).
  void ReplaceAll(std::vector<ChunkEntry> entries) {
    entries_ = std::move(entries);
  }

  ByteBuffer Serialize() const;
  static Result<ChunkEncoder> Deserialize(ByteView bytes);

 private:
  std::vector<ChunkEntry> entries_;
};

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_CHUNK_ENCODER_H_
