#include "tsf/shape.h"

namespace dl::tsf {

std::string TensorShape::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += ")";
  return out;
}

}  // namespace dl::tsf
