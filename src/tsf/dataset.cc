#include "tsf/dataset.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "util/clock.h"
#include "util/envelope.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace dl::tsf {

Dataset::Dataset(storage::StoragePtr store)
    : store_(std::move(store)),
      // Sample ids must be unique across branches and sessions: seed from
      // wall time + object identity, never a fixed constant.
      id_rng_(Mix64(static_cast<uint64_t>(NowMicros()) ^
                    reinterpret_cast<uintptr_t>(this))) {}

Result<Slice> StoreLinkResolver::Fetch(const std::string& url) {
  size_t pos = url.find("://");
  if (pos == std::string::npos) {
    return Status::InvalidArgument("link url missing scheme: " + url);
  }
  std::string scheme = url.substr(0, pos);
  std::string key = url.substr(pos + 3);
  auto it = stores_.find(scheme);
  if (it == stores_.end()) {
    return Status::NotFound("no store registered for scheme '" + scheme +
                            "'");
  }
  return it->second->Get(key);
}

Result<std::shared_ptr<Dataset>> Dataset::Create(storage::StoragePtr store,
                                                 Options options) {
  DL_ASSIGN_OR_RETURN(bool exists, store->Exists(kMetaKey));
  if (exists) {
    return Status::AlreadyExists("dataset already exists at storage root");
  }
  auto ds = std::shared_ptr<Dataset>(new Dataset(std::move(store)));
  ds->meta_ = Json::MakeObject();
  ds->meta_.Set("format_version", 1);
  ds->meta_.Set("description", options.description);
  ds->meta_.Set("tensors", Json::MakeArray());
  ds->meta_.Set("provenance", Json::MakeArray());
  ds->meta_.Set("with_sample_ids", options.with_sample_ids);
  ds->with_sample_ids_ = options.with_sample_ids;
  ds->LogProvenance("dataset created");
  if (options.with_sample_ids) {
    TensorOptions id_opts;
    id_opts.htype = "generic";
    id_opts.dtype = "uint64";
    id_opts.sample_compression = "none";
    id_opts.chunk_compression = "lz77";
    id_opts.hidden = true;
    DL_ASSIGN_OR_RETURN(auto tensor,
                        Tensor::Create(ds->store_, kSampleIdTensor, id_opts));
    ds->tensors_[kSampleIdTensor] = std::move(tensor);
    Json names = Json::MakeArray();
    names.Append(kSampleIdTensor);
    ds->meta_.Set("tensors", std::move(names));
  }
  DL_RETURN_IF_ERROR(ds->PersistMeta());
  return ds;
}

Result<std::shared_ptr<Dataset>> Dataset::Open(storage::StoragePtr store) {
  // GetVerified CRC-checks the envelope (and heals a corrupt cached copy);
  // pre-§9 datasets with raw JSON metadata pass through unchanged.
  DL_ASSIGN_OR_RETURN(Slice meta_bytes,
                      storage::GetVerified(*store, kMetaKey));
  auto ds = std::shared_ptr<Dataset>(new Dataset(std::move(store)));
  DL_ASSIGN_OR_RETURN(ds->meta_, Json::Parse(meta_bytes.ToStringView()));
  ds->with_sample_ids_ = ds->meta_.Get("with_sample_ids").as_bool(true);
  const Json& names = ds->meta_.Get("tensors");
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i].as_string();
    DL_ASSIGN_OR_RETURN(auto tensor, Tensor::Open(ds->store_, name));
    ds->tensors_[name] = std::move(tensor);
  }
  return ds;
}

Result<Tensor*> Dataset::CreateTensor(const std::string& name,
                                      const TensorOptions& options) {
  if (name.empty() || name[0] == '_') {
    return Status::InvalidArgument(
        "tensor names must be non-empty and not start with '_' (reserved)");
  }
  if (tensors_.count(name) > 0) {
    return Status::AlreadyExists("tensor '" + name + "' already exists");
  }
  DL_ASSIGN_OR_RETURN(auto tensor, Tensor::Create(store_, name, options));
  Tensor* ptr = tensor.get();
  tensors_[name] = std::move(tensor);
  meta_.object()["tensors"].Append(name);
  LogProvenance("created tensor '" + name + "' htype=" +
                ptr->meta().htype.ToString());
  DL_RETURN_IF_ERROR(PersistMeta());
  return ptr;
}

Result<Tensor*> Dataset::GetTensor(const std::string& name) {
  auto it = tensors_.find(name);
  if (it == tensors_.end()) {
    return Status::NotFound("no tensor '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> Dataset::TensorNames(bool include_hidden) const {
  std::vector<std::string> names;
  for (const auto& [name, tensor] : tensors_) {
    if (!include_hidden && tensor->meta().hidden) continue;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> Dataset::GroupNames() const {
  std::set<std::string> groups;
  for (const auto& [name, tensor] : tensors_) {
    size_t pos = name.find('/');
    if (pos != std::string::npos) groups.insert(name.substr(0, pos));
  }
  return std::vector<std::string>(groups.begin(), groups.end());
}

std::vector<std::string> Dataset::TensorsInGroup(
    const std::string& group) const {
  std::vector<std::string> names;
  std::string prefix = group + "/";
  for (const auto& [name, tensor] : tensors_) {
    if (StartsWith(name, prefix)) names.push_back(name);
  }
  return names;
}

uint64_t Dataset::NumRows() const {
  uint64_t n = 0;
  for (const auto& [name, tensor] : tensors_) {
    if (tensor->meta().hidden) continue;
    n = std::max(n, tensor->NumSamples());
  }
  return n;
}

Status Dataset::Append(const std::map<std::string, Sample>& row) {
  return AppendWithId(row, id_rng_.Next() >> 1);
}

Status Dataset::AppendWithId(const std::map<std::string, Sample>& row,
                             uint64_t id) {
  for (const auto& [name, sample] : row) {
    if (tensors_.count(name) == 0) {
      return Status::NotFound("append: no tensor '" + name + "'");
    }
  }
  for (auto& [name, tensor] : tensors_) {
    if (name == kSampleIdTensor) continue;
    if (tensor->meta().hidden && row.count(name) == 0) continue;
    auto it = row.find(name);
    if (it != row.end()) {
      DL_RETURN_IF_ERROR(
          tensor->Append(it->second).WithContext("tensor '" + name + "'"));
    } else {
      DL_RETURN_IF_ERROR(
          tensor->Append(Sample::EmptyOf(tensor->meta().dtype)));
    }
  }
  if (with_sample_ids_) {
    auto it = tensors_.find(kSampleIdTensor);
    if (it != tensors_.end()) {
      // Store the raw 8 bytes: ids must round-trip exactly (no double
      // conversion, which would lose precision above 2^53).
      ByteBuffer bytes(8);
      std::memcpy(bytes.data(), &id, 8);
      DL_RETURN_IF_ERROR(it->second->Append(
          Sample(DType::kUInt64, TensorShape{}, std::move(bytes))));
    }
  }
  return Status::OK();
}

Result<uint64_t> Dataset::SampleIdAt(uint64_t index) {
  auto it = tensors_.find(kSampleIdTensor);
  if (it == tensors_.end()) return uint64_t{0};
  DL_ASSIGN_OR_RETURN(Sample s, it->second->Read(index));
  if (s.data.size() != 8) return uint64_t{0};
  uint64_t id;
  std::memcpy(&id, s.data.data(), 8);
  return id;
}

Result<std::map<std::string, Sample>> Dataset::ReadRow(uint64_t index) {
  std::map<std::string, Sample> row;
  for (auto& [name, tensor] : tensors_) {
    if (tensor->meta().hidden) continue;
    if (index >= tensor->NumSamples()) continue;
    DL_ASSIGN_OR_RETURN(Sample s, tensor->Read(index));
    row[name] = std::move(s);
  }
  if (row.empty()) {
    return Status::OutOfRange("row " + std::to_string(index) +
                              " beyond dataset length");
  }
  return row;
}

Status Dataset::AppendLink(const std::string& tensor_name,
                           const std::string& url) {
  DL_ASSIGN_OR_RETURN(Tensor * tensor, GetTensor(tensor_name));
  if (!tensor->meta().htype.is_link) {
    return Status::FailedPrecondition("tensor '" + tensor_name +
                                      "' is not a link tensor");
  }
  return tensor->Append(Sample::FromString(url));
}

Result<Slice> Dataset::ReadLinked(const std::string& tensor_name,
                                  uint64_t index, LinkResolver& resolver) {
  DL_ASSIGN_OR_RETURN(Tensor * tensor, GetTensor(tensor_name));
  if (!tensor->meta().htype.is_link) {
    return Status::FailedPrecondition("tensor '" + tensor_name +
                                      "' is not a link tensor");
  }
  DL_ASSIGN_OR_RETURN(Sample url_sample, tensor->Read(index));
  return resolver.Fetch(url_sample.AsString());
}

Status Dataset::Flush() {
  for (auto& [name, tensor] : tensors_) {
    DL_RETURN_IF_ERROR(tensor->Flush().WithContext("flush '" + name + "'"));
  }
  return PersistMeta();
}

void Dataset::LogProvenance(const std::string& event) {
  Json entry = Json::MakeObject();
  entry.Set("event", event);
  entry.Set("timestamp_us", NowMicros());
  meta_.object()["provenance"].Append(std::move(entry));
}

Status Dataset::PersistMeta() {
  std::string text = meta_.Dump(2);
  // Enveloped + durable: dataset_meta.json names every tensor, so a torn
  // write here would orphan the whole dataset (DESIGN.md §9).
  ByteBuffer framed = EnvelopeWrap(ByteView(text));
  return store_->PutDurable(kMetaKey, ByteView(framed));
}

}  // namespace dl::tsf
