#include "tsf/dtype.h"

namespace dl::tsf {

std::string_view DTypeName(DType t) {
  switch (t) {
    case DType::kBool:
      return "bool";
    case DType::kUInt8:
      return "uint8";
    case DType::kInt8:
      return "int8";
    case DType::kUInt16:
      return "uint16";
    case DType::kInt16:
      return "int16";
    case DType::kUInt32:
      return "uint32";
    case DType::kInt32:
      return "int32";
    case DType::kUInt64:
      return "uint64";
    case DType::kInt64:
      return "int64";
    case DType::kFloat32:
      return "float32";
    case DType::kFloat64:
      return "float64";
  }
  return "uint8";
}

Result<DType> DTypeFromName(std::string_view name) {
  if (name == "bool") return DType::kBool;
  if (name == "uint8" || name == "u8") return DType::kUInt8;
  if (name == "int8" || name == "i8") return DType::kInt8;
  if (name == "uint16") return DType::kUInt16;
  if (name == "int16") return DType::kInt16;
  if (name == "uint32") return DType::kUInt32;
  if (name == "int32" || name == "int") return DType::kInt32;
  if (name == "uint64") return DType::kUInt64;
  if (name == "int64" || name == "long") return DType::kInt64;
  if (name == "float32" || name == "float") return DType::kFloat32;
  if (name == "float64" || name == "double") return DType::kFloat64;
  return Status::InvalidArgument("unknown dtype '" + std::string(name) + "'");
}

}  // namespace dl::tsf
