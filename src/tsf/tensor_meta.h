#ifndef DEEPLAKE_TSF_TENSOR_META_H_
#define DEEPLAKE_TSF_TENSOR_META_H_

#include <string>

#include "compress/codec.h"
#include "tsf/dtype.h"
#include "tsf/htype.h"
#include "util/json.h"

namespace dl::tsf {

/// User-facing creation options for a tensor. Unset fields inherit the
/// htype's defaults (§3.3 "typed tensors ... enable sanity checks and
/// efficient memory layout").
struct TensorOptions {
  std::string htype = "generic";
  /// Empty -> htype default.
  std::string dtype;
  /// "default" -> htype default; "none" disables.
  std::string sample_compression = "default";
  std::string chunk_compression = "default";
  /// Upper bound on chunk payload bytes; the default follows the paper
  /// (§3.5 "the default chunk size is 8MB").
  uint64_t max_chunk_bytes = 8ull << 20;
  /// Hidden tensors (downsamples, shape/id side-data) are skipped by
  /// default iteration and visualization (§3.4).
  bool hidden = false;
  /// Lossy quality for image sample compression.
  int quality = 0;
};

/// Persisted per-tensor metadata (tensor_meta.json).
struct TensorMeta {
  std::string name;
  Htype htype;
  DType dtype = DType::kUInt8;
  compress::Compression sample_compression = compress::Compression::kNone;
  compress::Compression chunk_compression = compress::Compression::kNone;
  uint64_t max_chunk_bytes = 8ull << 20;
  bool hidden = false;
  int quality = 0;
  /// Committed sample count (kept in sync by Tensor::Flush).
  uint64_t length = 0;

  Json ToJson() const;
  static Result<TensorMeta> FromJson(const Json& j);

  /// Resolves user options against htype defaults.
  static Result<TensorMeta> FromOptions(const std::string& name,
                                        const TensorOptions& options);

  /// Checks a sample against the htype expectations and dtype. Empty
  /// samples (sparse padding) always pass.
  Status ValidateSample(const class Sample& sample) const;
};

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_TENSOR_META_H_
