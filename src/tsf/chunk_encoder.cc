#include "tsf/chunk_encoder.h"

#include <algorithm>

#include "util/coding.h"
#include "util/macros.h"

namespace dl::tsf {

void ChunkEncoder::AddChunk(uint64_t chunk_id, uint64_t num_samples) {
  uint64_t prev_last = entries_.empty() ? 0 : entries_.back().last_index + 1;
  entries_.push_back({prev_last + num_samples - 1, chunk_id});
}

void ChunkEncoder::ExtendLastChunk(uint64_t additional) {
  if (!entries_.empty()) entries_.back().last_index += additional;
}

Result<ChunkEncoder::Location> ChunkEncoder::Find(
    uint64_t global_index) const {
  if (entries_.empty() || global_index > entries_.back().last_index) {
    return Status::OutOfRange("chunk encoder: index " +
                              std::to_string(global_index) + " beyond " +
                              std::to_string(num_samples()) + " samples");
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), global_index,
      [](const ChunkEntry& e, uint64_t idx) { return e.last_index < idx; });
  size_t ordinal = static_cast<size_t>(it - entries_.begin());
  uint64_t first = ordinal == 0 ? 0 : entries_[ordinal - 1].last_index + 1;
  Location loc;
  loc.chunk_id = it->chunk_id;
  loc.chunk_ordinal = ordinal;
  loc.local_index = global_index - first;
  loc.chunk_first = first;
  loc.chunk_samples = it->last_index - first + 1;
  return loc;
}

Status ChunkEncoder::ReplaceChunkId(size_t ordinal, uint64_t new_chunk_id) {
  if (ordinal >= entries_.size()) {
    return Status::OutOfRange("chunk encoder: no row " +
                              std::to_string(ordinal));
  }
  entries_[ordinal].chunk_id = new_chunk_id;
  return Status::OK();
}

ByteBuffer ChunkEncoder::Serialize() const {
  ByteBuffer out;
  PutVarint64(out, entries_.size());
  uint64_t prev_last = 0;
  uint64_t prev_id = 0;
  for (const auto& e : entries_) {
    PutVarint64(out, e.last_index - prev_last);
    PutVarintSigned64(out,
                      static_cast<int64_t>(e.chunk_id - prev_id));
    prev_last = e.last_index;
    prev_id = e.chunk_id;
  }
  return out;
}

Result<ChunkEncoder> ChunkEncoder::Deserialize(ByteView bytes) {
  Decoder dec{bytes};
  DL_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
  ChunkEncoder enc;
  enc.entries_.reserve(n);
  uint64_t prev_last = 0;
  uint64_t prev_id = 0;
  for (uint64_t i = 0; i < n; ++i) {
    DL_ASSIGN_OR_RETURN(uint64_t dlast, dec.GetVarint64());
    DL_ASSIGN_OR_RETURN(int64_t did, dec.GetVarintSigned64());
    prev_last += dlast;
    prev_id += static_cast<uint64_t>(did);
    enc.entries_.push_back({prev_last, prev_id});
  }
  if (!dec.done()) {
    return Status::Corruption("chunk encoder: trailing bytes");
  }
  return enc;
}

}  // namespace dl::tsf
