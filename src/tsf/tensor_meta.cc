#include "tsf/tensor_meta.h"

#include "tsf/sample.h"
#include "util/macros.h"

namespace dl::tsf {

Json TensorMeta::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("name", name);
  j.Set("htype", htype.ToString());
  j.Set("dtype", std::string(DTypeName(dtype)));
  j.Set("sample_compression",
        std::string(compress::CompressionName(sample_compression)));
  j.Set("chunk_compression",
        std::string(compress::CompressionName(chunk_compression)));
  j.Set("max_chunk_bytes", max_chunk_bytes);
  j.Set("hidden", hidden);
  j.Set("quality", quality);
  j.Set("length", length);
  return j;
}

Result<TensorMeta> TensorMeta::FromJson(const Json& j) {
  TensorMeta m;
  m.name = j.Get("name").as_string();
  DL_ASSIGN_OR_RETURN(m.htype, ParseHtype(j.Get("htype").as_string()));
  DL_ASSIGN_OR_RETURN(m.dtype, DTypeFromName(j.Get("dtype").as_string()));
  DL_ASSIGN_OR_RETURN(
      m.sample_compression,
      compress::CompressionFromName(j.Get("sample_compression").as_string()));
  DL_ASSIGN_OR_RETURN(
      m.chunk_compression,
      compress::CompressionFromName(j.Get("chunk_compression").as_string()));
  m.max_chunk_bytes =
      static_cast<uint64_t>(j.Get("max_chunk_bytes").as_int(8ll << 20));
  m.hidden = j.Get("hidden").as_bool(false);
  m.quality = static_cast<int>(j.Get("quality").as_int(0));
  m.length = static_cast<uint64_t>(j.Get("length").as_int(0));
  return m;
}

Result<TensorMeta> TensorMeta::FromOptions(const std::string& name,
                                           const TensorOptions& options) {
  TensorMeta m;
  m.name = name;
  DL_ASSIGN_OR_RETURN(m.htype, ParseHtype(options.htype));
  if (options.dtype.empty()) {
    m.dtype = m.htype.default_dtype();
  } else {
    DL_ASSIGN_OR_RETURN(m.dtype, DTypeFromName(options.dtype));
  }
  if (options.sample_compression == "default") {
    m.sample_compression = m.htype.default_sample_compression();
  } else {
    DL_ASSIGN_OR_RETURN(m.sample_compression, compress::CompressionFromName(
                                                  options.sample_compression));
  }
  if (options.chunk_compression == "default") {
    m.chunk_compression = m.htype.default_chunk_compression();
  } else {
    DL_ASSIGN_OR_RETURN(m.chunk_compression, compress::CompressionFromName(
                                                 options.chunk_compression));
  }
  if (m.sample_compression != compress::Compression::kNone &&
      m.chunk_compression != compress::Compression::kNone) {
    return Status::InvalidArgument(
        "tensor '" + name +
        "': sample and chunk compression are mutually exclusive");
  }
  if (options.max_chunk_bytes < 1024) {
    return Status::InvalidArgument("max_chunk_bytes must be >= 1KB");
  }
  m.max_chunk_bytes = options.max_chunk_bytes;
  m.hidden = options.hidden;
  m.quality = options.quality;
  return m;
}

Status TensorMeta::ValidateSample(const Sample& sample) const {
  DL_RETURN_IF_ERROR(sample.Validate());
  if (sample.shape.IsEmptySample()) return Status::OK();  // sparse padding
  if (sample.dtype != dtype) {
    return Status::InvalidArgument(
        "tensor '" + name + "' expects dtype " + std::string(DTypeName(dtype)) +
        ", got " + std::string(DTypeName(sample.dtype)));
  }
  Htype::Expectations e = htype.expectations();
  if (e.ndim >= 0) {
    int nd = static_cast<int>(sample.shape.ndim());
    if (nd != e.ndim && nd != e.alt_ndim) {
      return Status::InvalidArgument(
          "tensor '" + name + "' (htype " + htype.ToString() + ") expects " +
          std::to_string(e.ndim) + "-d samples, got shape " +
          sample.shape.ToString());
    }
  }
  return Status::OK();
}

}  // namespace dl::tsf
