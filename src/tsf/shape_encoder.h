#ifndef DEEPLAKE_TSF_SHAPE_ENCODER_H_
#define DEEPLAKE_TSF_SHAPE_ENCODER_H_

#include <cstdint>
#include <vector>

#include "tsf/shape.h"
#include "util/bytes.h"
#include "util/result.h"

namespace dl::tsf {

/// Run-length-encoded per-sample shape index — the "hidden tensor
/// preserving shape information for fast queries" of §3.4. TQL queries on
/// SHAPE(t) and the tiling/materialization planners read shapes from here
/// without touching any chunk.
class ShapeEncoder {
 public:
  ShapeEncoder() = default;

  /// Appends the shape of the next sample; merges into the last run when
  /// equal (uniform datasets cost O(1) rows).
  void Append(const TensorShape& shape);

  /// Replaces the shape at `index` (sample update path). May split a run.
  Status Set(uint64_t index, const TensorShape& shape);

  /// Shape of sample `index`; OutOfRange past the end.
  Result<TensorShape> At(uint64_t index) const;

  uint64_t num_samples() const {
    return rows_.empty() ? 0 : rows_.back().last_index + 1;
  }
  size_t num_rows() const { return rows_.size(); }

  ByteBuffer Serialize() const;
  static Result<ShapeEncoder> Deserialize(ByteView bytes);

 private:
  struct Row {
    uint64_t last_index;
    TensorShape shape;
  };

  /// Rebuilds rows_ from an explicit list (used by Set).
  void Rebuild(const std::vector<TensorShape>& shapes);
  std::vector<TensorShape> Expand() const;

  std::vector<Row> rows_;
};

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_SHAPE_ENCODER_H_
