#include "tsf/tensor.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/clock.h"
#include "util/envelope.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace dl::tsf {

namespace {

std::string TensorDir(const std::string& name) {
  return PathJoin("tensors", name);
}

/// Fresh chunk-id base per writing session: the high bits are random (so
/// ids never collide across branches/sessions), the low bits count up (so
/// the chunk encoder's delta coding stays ~1 byte per chunk, §3.4).
uint64_t FreshChunkIdBase() {
  static std::atomic<uint64_t> counter{0};
  uint64_t entropy = static_cast<uint64_t>(NowMicros()) ^
                     (counter.fetch_add(1) << 48);
  return Mix64(entropy) & ~0xFFFFFFull;  // low 24 bits free for the counter
}

}  // namespace

Tensor::Tensor(storage::StoragePtr store, TensorMeta meta)
    : store_(std::move(store)), meta_(std::move(meta)) {
  next_chunk_id_ = FreshChunkIdBase();
  open_chunk_ = std::make_unique<ChunkBuilder>(
      meta_.dtype, meta_.sample_compression, meta_.chunk_compression);
}

std::string Tensor::ChunkKey(uint64_t chunk_id) const {
  return PathJoin(TensorDir(meta_.name), "chunks", Hex64(chunk_id));
}

std::string Tensor::MetaKey() const {
  return PathJoin(TensorDir(meta_.name), "tensor_meta.json");
}

Result<std::unique_ptr<Tensor>> Tensor::Create(storage::StoragePtr store,
                                               const std::string& name,
                                               const TensorOptions& options) {
  DL_ASSIGN_OR_RETURN(TensorMeta meta, TensorMeta::FromOptions(name, options));
  std::string meta_key = PathJoin(TensorDir(name), "tensor_meta.json");
  DL_ASSIGN_OR_RETURN(bool exists, store->Exists(meta_key));
  if (exists) {
    return Status::AlreadyExists("tensor '" + name + "' already exists");
  }
  auto tensor = std::unique_ptr<Tensor>(new Tensor(store, std::move(meta)));
  DL_RETURN_IF_ERROR(tensor->Flush());  // persist meta + empty encoders
  return tensor;
}

Result<std::unique_ptr<Tensor>> Tensor::Open(storage::StoragePtr store,
                                             const std::string& name) {
  std::string dir = TensorDir(name);
  // Enveloped since the crash-consistency layer (DESIGN.md §9); legacy raw
  // JSON passes through GetVerified unchanged.
  DL_ASSIGN_OR_RETURN(
      Slice meta_bytes,
      storage::GetVerified(*store, PathJoin(dir, "tensor_meta.json")));
  DL_ASSIGN_OR_RETURN(Json meta_json,
                      Json::Parse(meta_bytes.ToStringView()));
  DL_ASSIGN_OR_RETURN(TensorMeta meta, TensorMeta::FromJson(meta_json));
  auto tensor = std::unique_ptr<Tensor>(new Tensor(store, std::move(meta)));

  DL_ASSIGN_OR_RETURN(Slice enc_bytes,
                      store->Get(PathJoin(dir, "chunk_encoder.bin")));
  DL_ASSIGN_OR_RETURN(tensor->chunk_encoder_,
                      ChunkEncoder::Deserialize(ByteView(enc_bytes)));
  DL_ASSIGN_OR_RETURN(Slice shp_bytes,
                      store->Get(PathJoin(dir, "shape_encoder.bin")));
  DL_ASSIGN_OR_RETURN(tensor->shape_encoder_,
                      ShapeEncoder::Deserialize(ByteView(shp_bytes)));
  DL_ASSIGN_OR_RETURN(Slice tile_bytes,
                      store->Get(PathJoin(dir, "tile_encoder.bin")));
  DL_ASSIGN_OR_RETURN(tensor->tile_encoder_,
                      TileEncoder::Deserialize(ByteView(tile_bytes)));
  return tensor;
}

uint64_t Tensor::NumSamples() const {
  return chunk_encoder_.num_samples() +
         (open_chunk_ ? open_chunk_->num_samples() : 0);
}

Status Tensor::Append(const Sample& sample) {
  DL_RETURN_IF_ERROR(meta_.ValidateSample(sample));
  return AppendInternal(sample, ByteView());
}

Status Tensor::AppendPrecompressed(ByteView frame, const TensorShape& shape) {
  if (meta_.sample_compression == compress::Compression::kNone) {
    return Status::FailedPrecondition(
        "tensor '" + meta_.name +
        "' has no sample compression; precompressed append not applicable");
  }
  Sample placeholder(meta_.dtype, shape, {});  // shape carrier only
  return AppendInternal(placeholder, frame);
}

Status Tensor::AppendInternal(const Sample& sample, ByteView precompressed) {
  uint64_t raw_bytes = sample.shape.IsEmptySample()
                           ? 0
                           : sample.NumElements() * DTypeSize(meta_.dtype);
  bool oversize = raw_bytes > meta_.max_chunk_bytes &&
                  !meta_.htype.exempt_from_tiling() &&
                  precompressed.empty();
  if (oversize) {
    return AppendTiled(sample);
  }

  // Seal the open chunk first when this sample would push it past the
  // upper bound (the lower/upper-bound packing rule of §3.4).
  uint64_t incoming = precompressed.empty() ? raw_bytes : precompressed.size();
  if (!open_chunk_->empty() &&
      open_chunk_->payload_bytes() + incoming > meta_.max_chunk_bytes) {
    DL_RETURN_IF_ERROR(SealOpenChunk());
  }
  if (precompressed.empty()) {
    DL_RETURN_IF_ERROR(open_chunk_->Append(sample));
  } else {
    DL_RETURN_IF_ERROR(
        open_chunk_->AppendPrecompressed(precompressed, sample.shape));
  }
  shape_encoder_.Append(sample.shape);
  return Status::OK();
}

Status Tensor::AppendTiled(const Sample& sample) {
  uint64_t index = NumSamples();
  TileLayout layout = ComputeTileLayout(sample.shape, DTypeSize(meta_.dtype),
                                        meta_.max_chunk_bytes);
  uint64_t tiles = layout.num_tiles();
  layout.chunk_ids.reserve(tiles);
  // Row-major walk over the grid.
  std::vector<uint64_t> coord(layout.grid.size(), 0);
  for (uint64_t t = 0; t < tiles; ++t) {
    ByteBuffer tile_bytes = ExtractTile(sample, layout, coord);
    TensorShape tile_shape = layout.TileShapeAt(coord);
    ChunkBuilder builder(meta_.dtype, meta_.sample_compression,
                         meta_.chunk_compression);
    DL_RETURN_IF_ERROR(
        builder.Append(Sample(meta_.dtype, tile_shape, std::move(tile_bytes))));
    DL_ASSIGN_OR_RETURN(ByteBuffer obj, builder.Finish());
    uint64_t id = NextChunkId();
    DL_RETURN_IF_ERROR(store_->Put(ChunkKey(id), ByteView(obj)));
    layout.chunk_ids.push_back(id);
    // Advance the grid odometer.
    for (size_t d = layout.grid.size(); d-- > 0;) {
      if (++coord[d] < layout.grid[d]) break;
      coord[d] = 0;
    }
  }
  // The sample still occupies one slot in the chunk stream: an empty
  // placeholder keeps the chunk encoder a bijection over sample indices.
  DL_RETURN_IF_ERROR(open_chunk_->Append(Sample::EmptyOf(meta_.dtype)));
  shape_encoder_.Append(sample.shape);
  tile_encoder_.Set(index, std::move(layout));
  return Status::OK();
}

Status Tensor::SealOpenChunk() {
  if (open_chunk_->empty()) return Status::OK();
  uint64_t count = open_chunk_->num_samples();
  DL_ASSIGN_OR_RETURN(ByteBuffer obj, open_chunk_->Finish());
  uint64_t id = NextChunkId();
  DL_RETURN_IF_ERROR(store_->Put(ChunkKey(id), ByteView(obj)));
  chunk_encoder_.AddChunk(id, count);
  return Status::OK();
}

Status Tensor::Flush() {
  DL_RETURN_IF_ERROR(SealOpenChunk());
  meta_.length = NumSamples();
  DL_RETURN_IF_ERROR(PersistEncoders());
  return Status::OK();
}

Status Tensor::PersistEncoders() {
  std::string dir = TensorDir(meta_.name);
  std::string meta_text = meta_.ToJson().Dump(2);
  // The meta is the tensor's root manifest: checksummed so a torn write
  // surfaces as Corruption instead of parsing as wrong JSON, durable so a
  // crash after Flush() cannot lose it.
  ByteBuffer framed = EnvelopeWrap(ByteView(meta_text));
  DL_RETURN_IF_ERROR(store_->PutDurable(PathJoin(dir, "tensor_meta.json"),
                                        ByteView(framed)));
  DL_RETURN_IF_ERROR(store_->Put(PathJoin(dir, "chunk_encoder.bin"),
                                 ByteView(chunk_encoder_.Serialize())));
  DL_RETURN_IF_ERROR(store_->Put(PathJoin(dir, "shape_encoder.bin"),
                                 ByteView(shape_encoder_.Serialize())));
  DL_RETURN_IF_ERROR(store_->Put(PathJoin(dir, "tile_encoder.bin"),
                                 ByteView(tile_encoder_.Serialize())));
  return Status::OK();
}

Result<std::shared_ptr<Chunk>> Tensor::FetchChunk(uint64_t chunk_id) {
  {
    MutexLock lock(cache_mu_);
    if (cached_chunk_ && cached_chunk_id_ == chunk_id) return cached_chunk_;
  }
  DL_ASSIGN_OR_RETURN(Slice bytes, store_->Get(ChunkKey(chunk_id)));
  auto parsed = Chunk::Parse(std::move(bytes));
  if (!parsed.ok() && parsed.status().IsCorruption()) {
    // The CRC failure may be a cache layer's copy, not the stored object:
    // drop every cached copy and re-read once before giving up.
    store_->Invalidate(ChunkKey(chunk_id));
    DL_ASSIGN_OR_RETURN(Slice retry_bytes,
                        store_->Get(ChunkKey(chunk_id)));
    parsed = Chunk::Parse(std::move(retry_bytes));
  }
  DL_ASSIGN_OR_RETURN(Chunk chunk, std::move(parsed));
  auto ptr = std::make_shared<Chunk>(std::move(chunk));
  {
    MutexLock lock(cache_mu_);
    cached_chunk_id_ = chunk_id;
    cached_chunk_ = ptr;
  }
  return ptr;
}

Result<TensorShape> Tensor::ShapeAt(uint64_t index) const {
  return shape_encoder_.At(index);
}

Result<Sample> Tensor::Read(uint64_t index) {
  if (index >= NumSamples()) {
    return Status::OutOfRange("tensor '" + meta_.name + "': index " +
                              std::to_string(index) + " beyond length " +
                              std::to_string(NumSamples()));
  }
  if (const TileLayout* layout = tile_encoder_.Get(index)) {
    return AssembleTiled(index, *layout);
  }
  uint64_t flushed = chunk_encoder_.num_samples();
  if (index >= flushed) {
    return open_chunk_->ReadBuffered(index - flushed);
  }
  DL_ASSIGN_OR_RETURN(ChunkEncoder::Location loc, chunk_encoder_.Find(index));
  DL_ASSIGN_OR_RETURN(std::shared_ptr<Chunk> chunk, FetchChunk(loc.chunk_id));
  return chunk->ReadSample(loc.local_index);
}

Result<Sample> Tensor::AssembleTiled(uint64_t index,
                                     const TileLayout& layout) {
  size_t dtype_size = DTypeSize(meta_.dtype);
  // Tiles are stitched into one staging allocation, then sealed into the
  // result's immutable Slice — the only full-sample copy on this path.
  ByteBuffer staging(layout.sample_shape.NumElements() * dtype_size);
  std::vector<uint64_t> coord(layout.grid.size(), 0);
  for (uint64_t t = 0; t < layout.num_tiles(); ++t) {
    DL_ASSIGN_OR_RETURN(std::shared_ptr<Chunk> chunk,
                        FetchChunk(layout.chunk_ids[t]));
    DL_ASSIGN_OR_RETURN(Sample tile, chunk->ReadSample(0));
    PlaceTile(staging, layout.sample_shape, dtype_size, layout, coord,
              ByteView(tile.data));
    for (size_t d = layout.grid.size(); d-- > 0;) {
      if (++coord[d] < layout.grid[d]) break;
      coord[d] = 0;
    }
  }
  (void)index;
  return Sample(meta_.dtype, layout.sample_shape, Slice(std::move(staging)));
}

Result<Sample> Tensor::ReadRegion(uint64_t index,
                                  const std::vector<uint64_t>& starts,
                                  const std::vector<uint64_t>& sizes) {
  DL_ASSIGN_OR_RETURN(TensorShape full, ShapeAt(index));
  if (starts.size() != full.ndim() || sizes.size() != full.ndim()) {
    return Status::InvalidArgument("region rank mismatch");
  }
  for (size_t d = 0; d < full.ndim(); ++d) {
    if (starts[d] + sizes[d] > full[d]) {
      return Status::OutOfRange("region exceeds sample bounds in dim " +
                                std::to_string(d));
    }
  }
  size_t dtype_size = DTypeSize(meta_.dtype);
  TensorShape region_shape{std::vector<uint64_t>(sizes)};
  ByteBuffer staging(region_shape.NumElements() * dtype_size);

  const TileLayout* layout = tile_encoder_.Get(index);
  Sample source;
  if (layout == nullptr) {
    // Untiled: fetch the whole sample, then crop.
    DL_ASSIGN_OR_RETURN(source, Read(index));
    CopyRegion(source, starts, region_shape, staging.data());
    return Sample(meta_.dtype, region_shape, Slice(std::move(staging)));
  }
  // Tiled: fetch only overlapping tiles, copy the intersections.
  std::vector<uint64_t> coord(layout->grid.size(), 0);
  for (uint64_t t = 0; t < layout->num_tiles(); ++t) {
    // Tile bounds.
    bool overlaps = true;
    for (size_t d = 0; d < full.ndim(); ++d) {
      uint64_t tstart = coord[d] * layout->tile_dims[d];
      uint64_t tend = tstart + layout->TileShapeAt(coord)[d];
      if (tend <= starts[d] || tstart >= starts[d] + sizes[d]) {
        overlaps = false;
        break;
      }
    }
    if (overlaps) {
      DL_ASSIGN_OR_RETURN(std::shared_ptr<Chunk> chunk,
                          FetchChunk(layout->chunk_ids[t]));
      DL_ASSIGN_OR_RETURN(Sample tile, chunk->ReadSample(0));
      // Copy intersection tile∩region element-wise (regions are small).
      CopyTileRegion(tile, *layout, coord, starts, sizes, region_shape,
                     staging.data());
    }
    for (size_t d = layout->grid.size(); d-- > 0;) {
      if (++coord[d] < layout->grid[d]) break;
      coord[d] = 0;
    }
  }
  return Sample(meta_.dtype, region_shape, Slice(std::move(staging)));
}

void Tensor::CopyRegion(const Sample& source,
                        const std::vector<uint64_t>& starts,
                        const TensorShape& out_shape, uint8_t* out_data) {
  // Generic strided copy source[starts + i] -> out[i].
  size_t nd = source.shape.ndim();
  size_t es = DTypeSize(source.dtype);
  if (nd == 0) {
    std::memcpy(out_data, source.data.data(), source.data.size());
    return;
  }
  std::vector<uint64_t> sstr(nd, 1), ostr(nd, 1);
  for (size_t d = nd; d-- > 1;) {
    sstr[d - 1] = sstr[d] * source.shape[d];
    ostr[d - 1] = ostr[d] * out_shape[d];
  }
  std::vector<uint64_t> idx(nd, 0);
  uint64_t run = out_shape[nd - 1];
  while (true) {
    uint64_t soff = 0, ooff = 0;
    for (size_t d = 0; d < nd; ++d) {
      soff += (starts[d] + idx[d]) * sstr[d];
      ooff += idx[d] * ostr[d];
    }
    std::memcpy(out_data + ooff * es, source.data.data() + soff * es,
                run * es);
    if (nd == 1) break;
    ptrdiff_t d = static_cast<ptrdiff_t>(nd) - 2;
    while (d >= 0) {
      if (++idx[d] < out_shape[d]) break;
      idx[d] = 0;
      --d;
    }
    if (d < 0) break;
  }
}

void Tensor::CopyTileRegion(const Sample& tile, const TileLayout& layout,
                            const std::vector<uint64_t>& coord,
                            const std::vector<uint64_t>& starts,
                            const std::vector<uint64_t>& sizes,
                            const TensorShape& out_shape, uint8_t* out_data) {
  size_t nd = layout.sample_shape.ndim();
  size_t es = DTypeSize(tile.dtype);
  // Intersection in global coordinates.
  std::vector<uint64_t> tile_start(nd), isect_start(nd), isect_size(nd);
  for (size_t d = 0; d < nd; ++d) {
    tile_start[d] = coord[d] * layout.tile_dims[d];
    uint64_t lo = std::max(tile_start[d], starts[d]);
    uint64_t hi = std::min(tile_start[d] + tile.shape[d],
                           starts[d] + sizes[d]);
    isect_start[d] = lo;
    isect_size[d] = hi - lo;
  }
  std::vector<uint64_t> tstr(nd, 1), ostr(nd, 1);
  for (size_t d = nd; d-- > 1;) {
    tstr[d - 1] = tstr[d] * tile.shape[d];
    ostr[d - 1] = ostr[d] * out_shape[d];
  }
  std::vector<uint64_t> idx(nd, 0);
  uint64_t run = isect_size[nd - 1];
  while (true) {
    uint64_t toff = 0, ooff = 0;
    for (size_t d = 0; d < nd; ++d) {
      toff += (isect_start[d] - tile_start[d] + idx[d]) * tstr[d];
      ooff += (isect_start[d] - starts[d] + idx[d]) * ostr[d];
    }
    std::memcpy(out_data + ooff * es, tile.data.data() + toff * es,
                run * es);
    if (nd == 1) break;
    ptrdiff_t d = static_cast<ptrdiff_t>(nd) - 2;
    while (d >= 0) {
      if (++idx[d] < isect_size[d]) break;
      idx[d] = 0;
      --d;
    }
    if (d < 0) break;
  }
}

Status Tensor::Update(uint64_t index, const Sample& sample) {
  DL_RETURN_IF_ERROR(meta_.ValidateSample(sample));
  uint64_t n = NumSamples();
  if (index >= n) {
    // Sparse out-of-bounds assignment (§3.5): pad then append.
    for (uint64_t i = n; i < index; ++i) {
      DL_RETURN_IF_ERROR(AppendInternal(Sample::EmptyOf(meta_.dtype),
                                        ByteView()));
    }
    return AppendInternal(sample, ByteView());
  }
  // Make the target chunk addressable: updates operate on flushed chunks.
  if (index >= chunk_encoder_.num_samples()) {
    DL_RETURN_IF_ERROR(Flush());
  }
  uint64_t raw_bytes =
      sample.shape.IsEmptySample() ? 0 : sample.nbytes();

  // Clear an existing tile entry; rewrite tiled if still oversized.
  if (tile_encoder_.IsTiled(index)) tile_encoder_.Remove(index);
  if (raw_bytes > meta_.max_chunk_bytes &&
      !meta_.htype.exempt_from_tiling()) {
    TileLayout layout = ComputeTileLayout(
        sample.shape, DTypeSize(meta_.dtype), meta_.max_chunk_bytes);
    std::vector<uint64_t> coord(layout.grid.size(), 0);
    for (uint64_t t = 0; t < layout.num_tiles(); ++t) {
      ByteBuffer tile_bytes = ExtractTile(sample, layout, coord);
      ChunkBuilder builder(meta_.dtype, meta_.sample_compression,
                           meta_.chunk_compression);
      DL_RETURN_IF_ERROR(builder.Append(
          Sample(meta_.dtype, layout.TileShapeAt(coord),
                 std::move(tile_bytes))));
      DL_ASSIGN_OR_RETURN(ByteBuffer obj, builder.Finish());
      uint64_t id = NextChunkId();
      DL_RETURN_IF_ERROR(store_->Put(ChunkKey(id), ByteView(obj)));
      layout.chunk_ids.push_back(id);
      for (size_t d = layout.grid.size(); d-- > 0;) {
        if (++coord[d] < layout.grid[d]) break;
        coord[d] = 0;
      }
    }
    tile_encoder_.Set(index, std::move(layout));
    // Replace the stored slot with an empty placeholder.
    DL_RETURN_IF_ERROR(RewriteSampleInChunk(index, Sample::EmptyOf(meta_.dtype)));
    DL_RETURN_IF_ERROR(shape_encoder_.Set(index, sample.shape));
    return PersistEncoders();
  }

  DL_RETURN_IF_ERROR(RewriteSampleInChunk(index, sample));
  DL_RETURN_IF_ERROR(shape_encoder_.Set(index, sample.shape));
  return PersistEncoders();
}

Status Tensor::UpdateContiguous(uint64_t start,
                                const std::vector<Sample>& samples) {
  if (samples.empty()) return Status::OK();
  uint64_t n = NumSamples();
  if (start >= n || samples.size() > n - start) {
    return Status::OutOfRange("UpdateContiguous range [" +
                              std::to_string(start) + ", " +
                              std::to_string(start + samples.size()) +
                              ") exceeds tensor length " + std::to_string(n));
  }
  for (const auto& s : samples) {
    DL_RETURN_IF_ERROR(meta_.ValidateSample(s));
  }
  // Updates operate on flushed chunks.
  if (start + samples.size() > chunk_encoder_.num_samples()) {
    DL_RETURN_IF_ERROR(Flush());
  }

  uint64_t i = 0;
  while (i < samples.size()) {
    uint64_t index = start + i;
    uint64_t raw = samples[i].shape.IsEmptySample() ? 0 : samples[i].nbytes();
    if (tile_encoder_.IsTiled(index) || raw > meta_.max_chunk_bytes) {
      DL_RETURN_IF_ERROR(Update(index, samples[i]));
      ++i;
      continue;
    }
    DL_ASSIGN_OR_RETURN(ChunkEncoder::Location loc, chunk_encoder_.Find(index));
    // Batch every remaining in-range sample that lands in this chunk and
    // stays on the dense path.
    uint64_t take = std::min<uint64_t>(samples.size() - i,
                                       loc.chunk_samples - loc.local_index);
    uint64_t dense = 0;
    while (dense < take) {
      const Sample& s = samples[i + dense];
      uint64_t rb = s.shape.IsEmptySample() ? 0 : s.nbytes();
      if (tile_encoder_.IsTiled(index + dense) || rb > meta_.max_chunk_bytes) {
        break;
      }
      ++dense;
    }
    take = dense;  // >= 1: samples[i] itself passed the checks above
    DL_ASSIGN_OR_RETURN(std::shared_ptr<Chunk> chunk, FetchChunk(loc.chunk_id));
    ChunkBuilder builder(meta_.dtype, meta_.sample_compression,
                         meta_.chunk_compression);
    for (uint64_t j = 0; j < loc.chunk_samples; ++j) {
      if (j >= loc.local_index && j < loc.local_index + take) {
        DL_RETURN_IF_ERROR(builder.Append(samples[i + (j - loc.local_index)]));
      } else {
        DL_ASSIGN_OR_RETURN(Sample s, chunk->ReadSample(j));
        DL_RETURN_IF_ERROR(builder.Append(s));
      }
    }
    DL_ASSIGN_OR_RETURN(ByteBuffer obj, builder.Finish());
    uint64_t new_id = NextChunkId();
    DL_RETURN_IF_ERROR(store_->Put(ChunkKey(new_id), ByteView(obj)));
    DL_RETURN_IF_ERROR(
        chunk_encoder_.ReplaceChunkId(loc.chunk_ordinal, new_id));
    {
      MutexLock lock(cache_mu_);
      cached_chunk_.reset();  // invalidate
    }
    for (uint64_t j = 0; j < take; ++j) {
      DL_RETURN_IF_ERROR(shape_encoder_.Set(index + j, samples[i + j].shape));
    }
    i += take;
  }
  return PersistEncoders();
}

Status Tensor::RewriteSampleInChunk(uint64_t index, const Sample& sample) {
  DL_ASSIGN_OR_RETURN(ChunkEncoder::Location loc, chunk_encoder_.Find(index));
  DL_ASSIGN_OR_RETURN(std::shared_ptr<Chunk> chunk, FetchChunk(loc.chunk_id));
  ChunkBuilder builder(meta_.dtype, meta_.sample_compression,
                       meta_.chunk_compression);
  for (uint64_t i = 0; i < loc.chunk_samples; ++i) {
    if (i == loc.local_index) {
      DL_RETURN_IF_ERROR(builder.Append(sample));
    } else {
      DL_ASSIGN_OR_RETURN(Sample s, chunk->ReadSample(i));
      DL_RETURN_IF_ERROR(builder.Append(s));
    }
  }
  DL_ASSIGN_OR_RETURN(ByteBuffer obj, builder.Finish());
  uint64_t new_id = NextChunkId();
  DL_RETURN_IF_ERROR(store_->Put(ChunkKey(new_id), ByteView(obj)));
  DL_RETURN_IF_ERROR(chunk_encoder_.ReplaceChunkId(loc.chunk_ordinal, new_id));
  {
    MutexLock lock(cache_mu_);
    cached_chunk_.reset();  // invalidate
  }
  return Status::OK();
}

Result<size_t> Tensor::Rechunk() {
  DL_RETURN_IF_ERROR(Flush());
  uint64_t n = chunk_encoder_.num_samples();
  ChunkEncoder new_encoder;
  ChunkBuilder builder(meta_.dtype, meta_.sample_compression,
                       meta_.chunk_compression);
  uint64_t pending = 0;
  auto seal = [&]() -> Status {
    if (pending == 0) return Status::OK();
    DL_ASSIGN_OR_RETURN(ByteBuffer obj, builder.Finish());
    uint64_t id = NextChunkId();
    DL_RETURN_IF_ERROR(store_->Put(ChunkKey(id), ByteView(obj)));
    new_encoder.AddChunk(id, pending);
    pending = 0;
    return Status::OK();
  };
  for (uint64_t i = 0; i < n; ++i) {
    if (tile_encoder_.IsTiled(i)) {
      // Keep tiled samples' placeholder in the stream.
      DL_RETURN_IF_ERROR(builder.Append(Sample::EmptyOf(meta_.dtype)));
      ++pending;
    } else {
      DL_ASSIGN_OR_RETURN(Sample s, Read(i));
      if (!builder.empty() &&
          builder.payload_bytes() + s.nbytes() > meta_.max_chunk_bytes) {
        DL_RETURN_IF_ERROR(seal());
      }
      DL_RETURN_IF_ERROR(builder.Append(s));
      ++pending;
    }
    if (builder.payload_bytes() >= meta_.max_chunk_bytes) {
      DL_RETURN_IF_ERROR(seal());
    }
  }
  DL_RETURN_IF_ERROR(seal());
  chunk_encoder_.ReplaceAll(
      std::vector<ChunkEntry>(new_encoder.entries()));
  {
    MutexLock lock(cache_mu_);
    cached_chunk_.reset();
  }
  DL_RETURN_IF_ERROR(PersistEncoders());
  return chunk_encoder_.num_chunks();
}

}  // namespace dl::tsf
