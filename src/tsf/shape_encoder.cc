#include "tsf/shape_encoder.h"

#include <algorithm>

#include "util/coding.h"
#include "util/macros.h"

namespace dl::tsf {

void ShapeEncoder::Append(const TensorShape& shape) {
  if (!rows_.empty() && rows_.back().shape == shape) {
    rows_.back().last_index += 1;
    return;
  }
  uint64_t last = rows_.empty() ? 0 : rows_.back().last_index + 1;
  rows_.push_back({last, shape});
}

Result<TensorShape> ShapeEncoder::At(uint64_t index) const {
  if (rows_.empty() || index > rows_.back().last_index) {
    return Status::OutOfRange("shape encoder: index " +
                              std::to_string(index) + " beyond end");
  }
  auto it = std::lower_bound(
      rows_.begin(), rows_.end(), index,
      [](const Row& r, uint64_t idx) { return r.last_index < idx; });
  return it->shape;
}

std::vector<TensorShape> ShapeEncoder::Expand() const {
  std::vector<TensorShape> shapes;
  shapes.reserve(num_samples());
  uint64_t start = 0;
  for (const auto& r : rows_) {
    for (uint64_t i = start; i <= r.last_index; ++i) shapes.push_back(r.shape);
    start = r.last_index + 1;
  }
  return shapes;
}

void ShapeEncoder::Rebuild(const std::vector<TensorShape>& shapes) {
  rows_.clear();
  for (const auto& s : shapes) Append(s);
}

Status ShapeEncoder::Set(uint64_t index, const TensorShape& shape) {
  if (rows_.empty() || index > rows_.back().last_index) {
    return Status::OutOfRange("shape encoder: set beyond end");
  }
  // Updates are rare relative to appends; a rebuild keeps runs canonical.
  std::vector<TensorShape> shapes = Expand();
  shapes[index] = shape;
  Rebuild(shapes);
  return Status::OK();
}

ByteBuffer ShapeEncoder::Serialize() const {
  ByteBuffer out;
  PutVarint64(out, rows_.size());
  uint64_t prev_last = 0;
  for (const auto& r : rows_) {
    PutVarint64(out, r.last_index - prev_last);
    r.shape.Encode(out);
    prev_last = r.last_index;
  }
  return out;
}

Result<ShapeEncoder> ShapeEncoder::Deserialize(ByteView bytes) {
  Decoder dec{bytes};
  DL_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
  ShapeEncoder enc;
  enc.rows_.reserve(n);
  uint64_t prev_last = 0;
  for (uint64_t i = 0; i < n; ++i) {
    DL_ASSIGN_OR_RETURN(uint64_t dlast, dec.GetVarint64());
    DL_ASSIGN_OR_RETURN(TensorShape shape, TensorShape::Decode(dec));
    prev_last += dlast;
    enc.rows_.push_back({prev_last, std::move(shape)});
  }
  if (!dec.done()) {
    return Status::Corruption("shape encoder: trailing bytes");
  }
  return enc;
}

}  // namespace dl::tsf
