#ifndef DEEPLAKE_TSF_SAMPLE_H_
#define DEEPLAKE_TSF_SAMPLE_H_

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "tsf/dtype.h"
#include "tsf/shape.h"
#include "util/buffer.h"
#include "util/bytes.h"
#include "util/result.h"

namespace dl::tsf {

/// One sample: an n-dimensional array value (a "cell" of a tensor column).
/// `data` is a Slice — a view plus keep-alive into a refcounted buffer
/// (DESIGN.md §10) — so a sample decoded from a chunk references the chunk's
/// (or the decode pool's) bytes directly with zero per-sample copies, and
/// keeps them alive past cache eviction or dataset close. Default access
/// from the public API returns these, the NumPy-array equivalent of the
/// paper (§3.2).
struct Sample {
  DType dtype = DType::kUInt8;
  TensorShape shape;
  // dllint-ok(slice-owner): data's keep-alive (Slice::owner) pins the
  // source chunk or decode-pool buffer; Sample is the zero-copy hand-off
  // type and deliberately stores no second owner.
  Slice data;

  Sample() = default;
  Sample(DType dt, TensorShape sh, Slice d)
      : dtype(dt), shape(std::move(sh)), data(std::move(d)) {}

  /// Number of elements (product of shape dims).
  uint64_t NumElements() const { return shape.NumElements(); }
  uint64_t nbytes() const { return data.size(); }
  bool IsEmpty() const { return data.empty(); }

  /// data.size() must equal NumElements() * DTypeSize(dtype); empty-shaped
  /// samples (any dim 0) must have no data.
  Status Validate() const {
    uint64_t expected =
        shape.IsEmptySample() ? 0 : NumElements() * DTypeSize(dtype);
    if (data.size() != expected) {
      return Status::InvalidArgument(
          "sample byte size " + std::to_string(data.size()) +
          " does not match shape " + shape.ToString() + " dtype " +
          std::string(DTypeName(dtype)));
    }
    return Status::OK();
  }

  // ---- Factories ----

  static Sample FromBytes(ByteView bytes, TensorShape shape,
                          DType dtype = DType::kUInt8) {
    // dllint-ok(hot-path-copy): explicitly a copying convenience for
    // callers holding transient views; zero-copy callers construct from a
    // Slice directly.
    return Sample(dtype, std::move(shape), Slice::CopyOf(bytes));
  }

  /// Scalar sample (empty shape).
  template <typename T>
  static Sample Scalar(T value, DType dtype) {
    ByteBuffer data(DTypeSize(dtype));
    StoreValue(data.data(), static_cast<double>(value), dtype);
    return Sample(dtype, TensorShape{}, std::move(data));
  }

  /// 1-D uint8 sample from UTF-8 text (htype "text" / "link[...]").
  static Sample FromString(std::string_view text) {
    return Sample(DType::kUInt8, TensorShape{text.size()},
                  BufferFromString(text));
  }

  /// 1-D sample from a typed vector.
  template <typename T>
  static Sample FromVector(const std::vector<T>& values, DType dtype) {
    ByteBuffer data(values.size() * DTypeSize(dtype));
    uint8_t* p = data.data();
    for (const T& v : values) {
      StoreValue(p, static_cast<double>(v), dtype);
      p += DTypeSize(dtype);
    }
    return Sample(dtype, TensorShape{values.size()}, std::move(data));
  }

  /// Empty sample (shape {0}) used as padding for sparse writes.
  static Sample EmptyOf(DType dtype) {
    return Sample(dtype, TensorShape{0}, {});
  }

  // ---- Element access ----

  /// Element `flat_index` as double (any dtype).
  double At(uint64_t flat_index) const {
    return LoadValue(data.data() + flat_index * DTypeSize(dtype), dtype);
  }

  /// Scalar convenience: first element.
  double AsDouble() const { return data.empty() ? 0.0 : At(0); }
  int64_t AsInt() const { return static_cast<int64_t>(AsDouble()); }
  std::string AsString() const {
    return std::string(reinterpret_cast<const char*>(data.data()),
                       data.size());
  }

  /// Loads/stores one element as double, converting per dtype.
  static double LoadValue(const uint8_t* p, DType t) {
    switch (t) {
      case DType::kBool:
      case DType::kUInt8:
        return *p;
      case DType::kInt8:
        return *reinterpret_cast<const int8_t*>(p);
      case DType::kUInt16: {
        uint16_t v;
        std::memcpy(&v, p, 2);
        return v;
      }
      case DType::kInt16: {
        int16_t v;
        std::memcpy(&v, p, 2);
        return v;
      }
      case DType::kUInt32: {
        uint32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case DType::kInt32: {
        int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case DType::kUInt64: {
        uint64_t v;
        std::memcpy(&v, p, 8);
        return static_cast<double>(v);
      }
      case DType::kInt64: {
        int64_t v;
        std::memcpy(&v, p, 8);
        return static_cast<double>(v);
      }
      case DType::kFloat32: {
        float v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case DType::kFloat64: {
        double v;
        std::memcpy(&v, p, 8);
        return v;
      }
    }
    return 0;
  }

  static void StoreValue(uint8_t* p, double value, DType t) {
    switch (t) {
      case DType::kBool:
        *p = value != 0 ? 1 : 0;
        return;
      case DType::kUInt8:
        *p = static_cast<uint8_t>(value);
        return;
      case DType::kInt8:
        *reinterpret_cast<int8_t*>(p) = static_cast<int8_t>(value);
        return;
      case DType::kUInt16: {
        uint16_t v = static_cast<uint16_t>(value);
        std::memcpy(p, &v, 2);
        return;
      }
      case DType::kInt16: {
        int16_t v = static_cast<int16_t>(value);
        std::memcpy(p, &v, 2);
        return;
      }
      case DType::kUInt32: {
        uint32_t v = static_cast<uint32_t>(value);
        std::memcpy(p, &v, 4);
        return;
      }
      case DType::kInt32: {
        int32_t v = static_cast<int32_t>(value);
        std::memcpy(p, &v, 4);
        return;
      }
      case DType::kUInt64: {
        uint64_t v = static_cast<uint64_t>(value);
        std::memcpy(p, &v, 8);
        return;
      }
      case DType::kInt64: {
        int64_t v = static_cast<int64_t>(value);
        std::memcpy(p, &v, 8);
        return;
      }
      case DType::kFloat32: {
        float v = static_cast<float>(value);
        std::memcpy(p, &v, 4);
        return;
      }
      case DType::kFloat64: {
        std::memcpy(p, &value, 8);
        return;
      }
    }
  }

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.dtype == b.dtype && a.shape == b.shape && a.data == b.data;
  }
};

}  // namespace dl::tsf

#endif  // DEEPLAKE_TSF_SAMPLE_H_
