#include "tsf/htype.h"

#include "util/string_util.h"

namespace dl::tsf {

std::string_view HtypeKindName(HtypeKind k) {
  switch (k) {
    case HtypeKind::kGeneric:
      return "generic";
    case HtypeKind::kImage:
      return "image";
    case HtypeKind::kVideo:
      return "video";
    case HtypeKind::kAudio:
      return "audio";
    case HtypeKind::kClassLabel:
      return "class_label";
    case HtypeKind::kBBox:
      return "bbox";
    case HtypeKind::kBinaryMask:
      return "binary_mask";
    case HtypeKind::kText:
      return "text";
    case HtypeKind::kEmbedding:
      return "embedding";
    case HtypeKind::kDicom:
      return "dicom";
  }
  return "generic";
}

std::string Htype::ToString() const {
  std::string base(HtypeKindName(kind));
  if (is_sequence) return "sequence[" + base + "]";
  if (is_link) return "link[" + base + "]";
  return base;
}

Htype::Expectations Htype::expectations() const {
  Expectations e;
  if (is_link) {
    // Links store URL strings regardless of the wrapped kind.
    e.ndim = 1;
    e.has_dtype = true;
    e.dtype = DType::kUInt8;
    return e;
  }
  switch (kind) {
    case HtypeKind::kImage:
      // (h, w, channels); grayscale (h, w) accepted.
      e.ndim = 3;
      e.alt_ndim = 2;
      e.has_dtype = true;
      e.dtype = DType::kUInt8;
      break;
    case HtypeKind::kVideo:
      e.ndim = 4;  // (frames, h, w, channels)
      e.has_dtype = true;
      e.dtype = DType::kUInt8;
      break;
    case HtypeKind::kAudio:
      e.ndim = 2;  // (samples, channels)
      e.alt_ndim = 1;
      break;
    case HtypeKind::kClassLabel:
      e.ndim = 0;  // scalar
      e.alt_ndim = 1;  // multi-label
      break;
    case HtypeKind::kBBox:
      e.ndim = 2;  // (boxes, 4)
      e.alt_ndim = 1;
      break;
    case HtypeKind::kBinaryMask:
      e.ndim = 2;
      e.alt_ndim = 3;
      e.has_dtype = true;
      e.dtype = DType::kBool;
      break;
    case HtypeKind::kText:
      e.ndim = 1;  // utf-8 bytes
      e.has_dtype = true;
      e.dtype = DType::kUInt8;
      break;
    case HtypeKind::kEmbedding:
      e.ndim = 1;
      break;
    case HtypeKind::kDicom:
      e.ndim = 3;  // (slices, h, w)
      e.alt_ndim = 2;
      break;
    case HtypeKind::kGeneric:
      break;
  }
  if (is_sequence && e.ndim >= 0) {
    // One extra leading "time" dimension.
    e.ndim += 1;
    if (e.alt_ndim >= 0) e.alt_ndim += 1;
  }
  return e;
}

DType Htype::default_dtype() const {
  if (is_link) return DType::kUInt8;
  switch (kind) {
    case HtypeKind::kImage:
    case HtypeKind::kVideo:
    case HtypeKind::kText:
      return DType::kUInt8;
    case HtypeKind::kAudio:
      return DType::kFloat32;
    case HtypeKind::kClassLabel:
      return DType::kInt32;
    case HtypeKind::kBBox:
      return DType::kFloat32;
    case HtypeKind::kBinaryMask:
      return DType::kBool;
    case HtypeKind::kEmbedding:
      return DType::kFloat32;
    case HtypeKind::kDicom:
      return DType::kUInt16;
    case HtypeKind::kGeneric:
      return DType::kUInt8;
  }
  return DType::kUInt8;
}

compress::Compression Htype::default_sample_compression() const {
  if (is_link) return compress::Compression::kNone;
  switch (kind) {
    case HtypeKind::kImage:
      return compress::Compression::kImageLossy;  // JPEG stand-in (§5)
    case HtypeKind::kVideo:
    case HtypeKind::kDicom:
      return compress::Compression::kImage;  // lossless
    default:
      return compress::Compression::kNone;
  }
}

compress::Compression Htype::default_chunk_compression() const {
  if (is_link) return compress::Compression::kLz77;
  switch (kind) {
    case HtypeKind::kClassLabel:
      return compress::Compression::kLz77;  // LZ4 stand-in (§5)
    case HtypeKind::kBinaryMask:
      return compress::Compression::kRle;
    case HtypeKind::kText:
      return compress::Compression::kLz77;
    default:
      return compress::Compression::kNone;
  }
}

Result<Htype> ParseHtype(std::string_view text) {
  Htype h;
  std::string_view inner = text;
  if (StartsWith(text, "sequence[") && EndsWith(text, "]")) {
    h.is_sequence = true;
    inner = text.substr(9, text.size() - 10);
  } else if (StartsWith(text, "link[") && EndsWith(text, "]")) {
    h.is_link = true;
    inner = text.substr(5, text.size() - 6);
  }
  if (inner.empty() || inner == "generic") {
    h.kind = HtypeKind::kGeneric;
  } else if (inner == "image") {
    h.kind = HtypeKind::kImage;
  } else if (inner == "video") {
    h.kind = HtypeKind::kVideo;
  } else if (inner == "audio") {
    h.kind = HtypeKind::kAudio;
  } else if (inner == "class_label") {
    h.kind = HtypeKind::kClassLabel;
  } else if (inner == "bbox") {
    h.kind = HtypeKind::kBBox;
  } else if (inner == "binary_mask") {
    h.kind = HtypeKind::kBinaryMask;
  } else if (inner == "text") {
    h.kind = HtypeKind::kText;
  } else if (inner == "embedding") {
    h.kind = HtypeKind::kEmbedding;
  } else if (inner == "dicom") {
    h.kind = HtypeKind::kDicom;
  } else {
    return Status::InvalidArgument("unknown htype '" + std::string(text) +
                                   "'");
  }
  return h;
}

}  // namespace dl::tsf
