#ifndef DEEPLAKE_SIM_GPU_MODEL_H_
#define DEEPLAKE_SIM_GPU_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/json.h"
#include "util/thread_annotations.h"

namespace dl::sim {

/// One busy/idle interval of a simulated accelerator.
struct TimelineInterval {
  int64_t start_us;
  int64_t end_us;
  bool busy;
};

/// Rate-based GPU stand-in (see DESIGN.md substitutions). A training step
/// on `batch` samples takes `batch / samples_per_sec` seconds of "compute";
/// the gap between a step finishing and the next batch arriving is idle
/// time. Utilization = busy / (busy + idle), the paper's Fig. 9/10 metric.
class GpuModel {
 public:
  /// `samples_per_sec`: the model's compute throughput when never starved.
  explicit GpuModel(double samples_per_sec, std::string label = "gpu0")
      : samples_per_sec_(samples_per_sec), label_(std::move(label)) {
    auto& registry = obs::MetricsRegistry::Global();
    obs::Labels labels = {{"gpu", label_}};
    util_gauge_ = registry.GetGauge("sim.gpu.utilization", labels);
    idle_gauge_ = registry.GetGauge("sim.gpu.idle_us", labels);
    samples_counter_ = registry.GetCounter("sim.gpu.samples", labels);
    step_hist_ = registry.GetHistogram("sim.gpu.step_us", labels);
  }

  /// Blocks for the simulated step duration and records the interval.
  /// Thread-safe: each GpuModel instance represents one device consumed by
  /// one training loop, but stats can be read concurrently.
  void TrainStep(uint64_t batch_size) {
    int64_t now = NowMicros();
    int64_t step_us = static_cast<int64_t>(
        static_cast<double>(batch_size) / samples_per_sec_ * 1e6);
    {
      MutexLock lock(mu_);
      if (last_end_us_ != 0 && now > last_end_us_) {
        intervals_.push_back({last_end_us_, now, /*busy=*/false});
        idle_us_ += now - last_end_us_;
      }
      intervals_.push_back({now, now + step_us, /*busy=*/true});
      busy_us_ += step_us;
      last_end_us_ = now + step_us;
      samples_ += batch_size;
      steps_ += 1;
      int64_t total = busy_us_ + idle_us_;
      util_gauge_->Set(
          total > 0 ? static_cast<double>(busy_us_) / total : 0.0);
      idle_gauge_->Set(static_cast<double>(idle_us_));
    }
    samples_counter_->Add(batch_size);
    step_hist_->Observe(static_cast<double>(step_us));
    SleepMicros(step_us);
  }

  /// Busy fraction over the observed span; 0 when nothing ran.
  double Utilization() const {
    MutexLock lock(mu_);
    int64_t total = busy_us_ + idle_us_;
    return total > 0 ? static_cast<double>(busy_us_) / total : 0.0;
  }

  uint64_t samples_processed() const {
    MutexLock lock(mu_);
    return samples_;
  }
  uint64_t steps() const {
    MutexLock lock(mu_);
    return steps_;
  }
  int64_t busy_micros() const {
    MutexLock lock(mu_);
    return busy_us_;
  }
  int64_t idle_micros() const {
    MutexLock lock(mu_);
    return idle_us_;
  }
  const std::string& label() const { return label_; }

  std::vector<TimelineInterval> Timeline() const {
    MutexLock lock(mu_);
    return intervals_;
  }

  /// Utilization within consecutive windows of `window_us`, for plotting a
  /// Fig. 10-style utilization-over-time series.
  std::vector<double> UtilizationSeries(int64_t window_us) const;

  /// UtilizationSeries as a bench-embeddable JSON document:
  /// {"gpu","window_us","utilization":[...]}.
  Json UtilizationTimelineJson(int64_t window_us) const;

 private:
  double samples_per_sec_;
  std::string label_;
  // Leaf lock: gauge writes under it are atomic stores, never other locks.
  mutable Mutex mu_{"sim.gpu_model.mu"};
  std::vector<TimelineInterval> intervals_ DL_GUARDED_BY(mu_);
  int64_t busy_us_ DL_GUARDED_BY(mu_) = 0;
  int64_t idle_us_ DL_GUARDED_BY(mu_) = 0;
  int64_t last_end_us_ DL_GUARDED_BY(mu_) = 0;
  uint64_t samples_ DL_GUARDED_BY(mu_) = 0;
  uint64_t steps_ DL_GUARDED_BY(mu_) = 0;
  // Registry instruments (family `sim.gpu.*`, labeled {gpu=<label>}):
  // live utilization/starvation, refreshed every TrainStep.
  obs::Gauge* util_gauge_;
  obs::Gauge* idle_gauge_;
  obs::Counter* samples_counter_;
  obs::Histogram* step_hist_;
};

}  // namespace dl::sim

#endif  // DEEPLAKE_SIM_GPU_MODEL_H_
