#include "sim/gpu_model.h"

#include <algorithm>

namespace dl::sim {

std::vector<double> GpuModel::UtilizationSeries(int64_t window_us) const {
  std::vector<TimelineInterval> intervals = Timeline();
  if (intervals.empty() || window_us <= 0) return {};
  int64_t t0 = intervals.front().start_us;
  int64_t t1 = intervals.back().end_us;
  size_t windows = static_cast<size_t>((t1 - t0 + window_us - 1) / window_us);
  std::vector<double> busy(windows, 0.0);
  for (const auto& iv : intervals) {
    if (!iv.busy) continue;
    int64_t s = iv.start_us;
    while (s < iv.end_us) {
      size_t w = static_cast<size_t>((s - t0) / window_us);
      if (w >= windows) break;
      int64_t wend = t0 + static_cast<int64_t>(w + 1) * window_us;
      int64_t e = std::min(iv.end_us, wend);
      busy[w] += static_cast<double>(e - s);
      s = e;
    }
  }
  for (auto& b : busy) b /= static_cast<double>(window_us);
  for (auto& b : busy) b = std::min(b, 1.0);
  return busy;
}

Json GpuModel::UtilizationTimelineJson(int64_t window_us) const {
  Json series = Json::MakeArray();
  for (double u : UtilizationSeries(window_us)) series.Append(u);
  Json doc = Json::MakeObject();
  doc.Set("gpu", label_);
  doc.Set("window_us", window_us);
  doc.Set("utilization", std::move(series));
  return doc;
}

}  // namespace dl::sim
