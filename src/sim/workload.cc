#include "sim/workload.h"

#include "compress/codec.h"
#include "util/rng.h"

namespace dl::sim {

std::vector<uint64_t> WorkloadGenerator::ShapeOf(uint64_t index) const {
  Rng rng(Mix64(seed_ ^ (index * 0x9e3779b97f4a7c15ull)));
  uint64_t h = spec_.min_side;
  uint64_t w = spec_.min_side;
  if (spec_.max_side > spec_.min_side) {
    h += rng.Uniform(spec_.max_side - spec_.min_side + 1);
    w += rng.Uniform(spec_.max_side - spec_.min_side + 1);
  }
  return {h, w, spec_.channels};
}

uint64_t WorkloadGenerator::RawBytesOf(uint64_t index) const {
  auto s = ShapeOf(index);
  return s[0] * s[1] * s[2];
}

SampleSpec WorkloadGenerator::Generate(uint64_t index) const {
  SampleSpec out;
  out.shape = ShapeOf(index);
  uint64_t h = out.shape[0], w = out.shape[1], c = out.shape[2];
  Rng rng(Mix64(seed_ ^ (index * 0xc4ceb9fe1a85ec53ull)));
  out.label = static_cast<int64_t>(rng.Uniform(spec_.num_classes));
  if (spec_.with_caption) {
    static const char* kSubjects[] = {"a photo", "a painting", "a sketch",
                                      "an aerial view", "a close-up"};
    static const char* kObjects[] = {"of a cat",   "of a street",
                                     "of mountains", "of a bridge",
                                     "of two dogs", "of a sailing boat"};
    out.caption = std::string(kSubjects[rng.Uniform(5)]) + " " +
                  kObjects[rng.Uniform(6)] + " #" + std::to_string(index);
  }

  out.pixels.resize(h * w * c);
  // Smooth base field with per-sample phase. A cheap integer scheme keeps
  // generation from dominating ingestion benches while preserving strong
  // local correlation (so predictive codecs get photographic-like ratios).
  uint64_t phase = rng.Next();
  uint32_t px = static_cast<uint32_t>(phase & 0xff);
  uint32_t py = static_cast<uint32_t>((phase >> 8) & 0xff);
  uint8_t* p = out.pixels.data();
  uint32_t noise_state = static_cast<uint32_t>(phase >> 16) | 1;
  for (uint64_t y = 0; y < h; ++y) {
    uint32_t row_base = static_cast<uint32_t>((y + py) * 3 / 2);
    for (uint64_t x = 0; x < w; ++x) {
      // Low-frequency noise: advance the LCG once per 8 columns.
      if ((x & 7) == 0) {
        noise_state = noise_state * 1664525u + 1013904223u;
      }
      uint32_t base = row_base + static_cast<uint32_t>((x + px) * 2);
      uint32_t noise = (noise_state >> 24) & 0x0f;
      for (uint64_t ch = 0; ch < c; ++ch) {
        *p++ = static_cast<uint8_t>((base + ch * 37 + noise) & 0xff);
      }
    }
  }
  return out;
}

WorkloadGenerator::Spec WorkloadGenerator::FfhqLike(uint64_t side) {
  Spec s;
  s.name = "ffhq-like";
  s.min_side = s.max_side = side;
  s.channels = 3;
  s.num_classes = 2;
  return s;
}

WorkloadGenerator::Spec WorkloadGenerator::SmallJpeg() {
  Spec s;
  s.name = "small-jpeg";
  s.min_side = s.max_side = 250;
  s.channels = 3;
  s.num_classes = 1000;
  return s;
}

WorkloadGenerator::Spec WorkloadGenerator::ImageNetLike() {
  Spec s;
  s.name = "imagenet-like";
  s.min_side = 200;
  s.max_side = 500;
  s.channels = 3;
  s.num_classes = 1000;
  return s;
}

WorkloadGenerator::Spec WorkloadGenerator::LaionPair() {
  Spec s;
  s.name = "laion-pair";
  s.min_side = 128;
  s.max_side = 384;
  s.channels = 3;
  s.num_classes = 1;
  s.with_caption = true;
  return s;
}

WorkloadGenerator::Spec WorkloadGenerator::TinyMask() {
  Spec s;
  s.name = "tiny-mask";
  s.min_side = 32;
  s.max_side = 64;
  s.channels = 1;
  s.num_classes = 2;
  return s;
}

ByteBuffer EncodeAsImageFile(const SampleSpec& sample, int quality) {
  compress::CodecContext ctx;
  ctx.row_stride = sample.shape[1] * sample.shape[2];
  ctx.elem_size = static_cast<uint32_t>(sample.shape[2]);
  ctx.quality = quality;
  auto frame = compress::CompressBytes(compress::Compression::kImageLossy,
                                       ByteView(sample.pixels), ctx);
  // Compression of in-memory buffers cannot fail; keep the API simple.
  return frame.ok() ? frame.MoveValue() : ByteBuffer{};
}

Result<ByteBuffer> DecodeImageFile(ByteView file) {
  return compress::DecompressBytes(compress::Compression::kImageLossy, file);
}

}  // namespace dl::sim
