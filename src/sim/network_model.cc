#include "sim/network_model.h"

#include "util/clock.h"
#include "util/macros.h"

namespace dl::sim {

NetworkModel NetworkModel::LocalFs() {
  NetworkModel m;
  m.label = "local";
  m.first_byte_latency_us = 40;
  m.bandwidth_bytes_per_sec = 2.0e9;
  m.max_concurrent_requests = 128;
  m.put_overhead_us = 0;
  return m;
}

NetworkModel NetworkModel::S3SameRegion() {
  NetworkModel m;
  m.label = "s3";
  m.first_byte_latency_us = 12000;
  m.bandwidth_bytes_per_sec = 95.0e6;
  m.max_concurrent_requests = 64;
  m.put_overhead_us = 4000;
  return m;
}

NetworkModel NetworkModel::S3CrossRegion() {
  NetworkModel m;
  m.label = "s3-xregion";
  m.first_byte_latency_us = 38000;
  m.bandwidth_bytes_per_sec = 45.0e6;
  m.max_concurrent_requests = 64;
  m.put_overhead_us = 9000;
  return m;
}

NetworkModel NetworkModel::MinioLan() {
  NetworkModel m;
  m.label = "minio";
  m.first_byte_latency_us = 2500;
  // A single-machine MinIO serves far less aggregate bandwidth than S3's
  // fleet — the reason the paper sees both Deep Lake and WebDataset slow
  // down against it (Fig. 8).
  m.bandwidth_bytes_per_sec = 30.0e6;
  // The small connection pool is what hurts heavily-parallel streaming
  // loaders on MinIO relative to S3 (paper Fig. 8 observation).
  m.max_concurrent_requests = 4;
  m.put_overhead_us = 1500;
  return m;
}

SimulatedObjectStore::SimulatedObjectStore(storage::StoragePtr base,
                                           NetworkModel model)
    : base_(std::move(base)),
      model_(std::move(model)),
      slots_(model_.max_concurrent_requests),
      fault_rng_(model_.failure_seed) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Labels labels = {{"net", model_.label}};
  inflight_gauge_ = registry.GetGauge("sim.net.inflight", labels);
  queue_hist_ = registry.GetHistogram("sim.net.queue_us", labels);
  transfer_hist_ = registry.GetHistogram("sim.net.transfer_us", labels);
}

Status SimulatedObjectStore::MaybeInjectTransientFault() {
  if (model_.transient_failure_rate <= 0.0) return Status::OK();
  bool fail;
  {
    MutexLock lock(fault_mu_);
    fail = fault_rng_.NextBool(model_.transient_failure_rate);
  }
  if (!fail) return Status::OK();
  // The failed request still costs a round trip before the error lands.
  SimulateTransfer(0);
  return Status::Transient("sim: transient " + model_.label +
                           " fault (injected)");
}

void SimulatedObjectStore::SimulateTransfer(uint64_t bytes,
                                            int64_t extra_us) {
  // Queueing vs. service time, published separately: a saturated
  // connection pool shows up as queue_us growth at flat transfer_us — the
  // MinIO-vs-S3 signature of paper Fig. 8.
  int64_t wait_start = NowMicros();
  slots_.Acquire();
  queue_hist_->ObserveSinceMicros(wait_start);
  inflight_gauge_->Add(1);
  int64_t us = model_.TransferMicros(bytes) +
               static_cast<int64_t>(extra_us / model_.time_scale);
  SleepMicros(us);
  transfer_hist_->Observe(static_cast<double>(us));
  inflight_gauge_->Sub(1);
  slots_.Release();
}

Result<Slice> SimulatedObjectStore::Get(std::string_view key) {
  DL_RETURN_IF_ERROR(MaybeInjectTransientFault());
  DL_ASSIGN_OR_RETURN(Slice buf, base_->Get(key));
  SimulateTransfer(buf.size());
  stats_.get_requests++;
  stats_.bytes_read += buf.size();
  return buf;
}

Result<Slice> SimulatedObjectStore::GetRange(std::string_view key,
                                                  uint64_t offset,
                                                  uint64_t length) {
  DL_RETURN_IF_ERROR(MaybeInjectTransientFault());
  DL_ASSIGN_OR_RETURN(Slice buf, base_->GetRange(key, offset, length));
  SimulateTransfer(buf.size());
  stats_.get_range_requests++;
  stats_.bytes_read += buf.size();
  return buf;
}

Status SimulatedObjectStore::Put(std::string_view key, ByteView value) {
  DL_RETURN_IF_ERROR(MaybeInjectTransientFault());
  SimulateTransfer(value.size(), model_.put_overhead_us);
  stats_.put_requests++;
  stats_.bytes_written += value.size();
  return base_->Put(key, value);
}

Status SimulatedObjectStore::PutDurable(std::string_view key,
                                        ByteView value) {
  DL_RETURN_IF_ERROR(MaybeInjectTransientFault());
  SimulateTransfer(value.size(), model_.put_overhead_us);
  stats_.put_requests++;
  stats_.bytes_written += value.size();
  return base_->PutDurable(key, value);
}

Status SimulatedObjectStore::Delete(std::string_view key) {
  return base_->Delete(key);
}

Result<bool> SimulatedObjectStore::Exists(std::string_view key) {
  // Metadata round-trip: latency only.
  SimulateTransfer(0);
  return base_->Exists(key);
}

Result<uint64_t> SimulatedObjectStore::SizeOf(std::string_view key) {
  SimulateTransfer(0);
  return base_->SizeOf(key);
}

Result<std::vector<std::string>> SimulatedObjectStore::ListPrefix(
    std::string_view prefix) {
  SimulateTransfer(0);
  return base_->ListPrefix(prefix);
}

}  // namespace dl::sim
