#ifndef DEEPLAKE_SIM_WORKLOAD_H_
#define DEEPLAKE_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace dl::sim {

/// One synthetic dataset sample: an image tensor plus label/caption
/// side-data. Stand-in for FFHQ / ImageNet / LAION samples (DESIGN.md §1).
struct SampleSpec {
  std::vector<uint64_t> shape;  // {height, width, channels}
  ByteBuffer pixels;            // uint8, H*W*C bytes
  int64_t label = 0;
  std::string caption;          // non-empty for pair workloads
};

/// Deterministic synthetic-image workload. `Generate(i)` always returns the
/// same sample for the same (spec, seed, i), so writers and verifying
/// readers can re-derive ground truth without buffering the dataset.
class WorkloadGenerator {
 public:
  struct Spec {
    std::string name;
    uint64_t min_side = 224, max_side = 224;  // sampled independently for h,w
    uint64_t channels = 3;
    uint64_t num_classes = 1000;
    bool with_caption = false;
  };

  WorkloadGenerator(Spec spec, uint64_t seed)
      : spec_(std::move(spec)), seed_(seed) {}

  const Spec& spec() const { return spec_; }

  /// Generates sample `index`. Pixels are smooth (row/column correlated)
  /// with per-sample phase and mild noise — photographic-like entropy so
  /// codecs behave realistically.
  SampleSpec Generate(uint64_t index) const;

  /// Shape of sample `index` without generating pixels.
  std::vector<uint64_t> ShapeOf(uint64_t index) const;

  /// Bytes of sample `index`'s raw pixel data.
  uint64_t RawBytesOf(uint64_t index) const;

  // ---- Named workloads used by the benches. ----

  /// FFHQ stand-in (paper Fig. 6): fixed square images. `side` defaults to
  /// 1024 like the paper; benches scale it down and report the factor.
  static Spec FfhqLike(uint64_t side = 1024);
  /// The 250x250x3 synthetic-JPEG dataset (paper Figs. 7/8).
  static Spec SmallJpeg();
  /// ImageNet stand-in (paper Fig. 9): variable-shape images.
  static Spec ImageNetLike();
  /// LAION-400M stand-in (paper Fig. 10): small images + text captions.
  static Spec LaionPair();
  /// Tiny binary masks (RLE-friendly), for codec/htype tests.
  static Spec TinyMask();

 private:
  Spec spec_;
  uint64_t seed_;
};

/// Encodes a sample as a standalone "image file" (lossy image-codec frame,
/// the repo's JPEG stand-in). Baseline formats that the paper feeds with
/// JPEG files on disk store exactly these bytes.
ByteBuffer EncodeAsImageFile(const SampleSpec& sample, int quality = 75);

/// Decodes a file produced by `EncodeAsImageFile`. Returns the raw pixels.
Result<ByteBuffer> DecodeImageFile(ByteView file);

}  // namespace dl::sim

#endif  // DEEPLAKE_SIM_WORKLOAD_H_
