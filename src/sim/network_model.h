#ifndef DEEPLAKE_SIM_NETWORK_MODEL_H_
#define DEEPLAKE_SIM_NETWORK_MODEL_H_

#include <memory>
#include <string>

#include "storage/storage.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dl::sim {

/// Latency/bandwidth model of a storage backend's network path. The
/// simulated store sleeps according to this model, so prefetch-depth and
/// request-count effects behave like they do against real object storage
/// (see DESIGN.md substitutions: S3/GCS/MinIO).
struct NetworkModel {
  std::string label = "local";
  /// Time to first byte per request (connection + server latency).
  int64_t first_byte_latency_us = 0;
  /// Per-stream sustained throughput.
  double bandwidth_bytes_per_sec = 2.0e9;
  /// Cap on concurrently served requests (connection pool size).
  int max_concurrent_requests = 64;
  /// Extra fixed cost on writes (e.g. replication ack).
  int64_t put_overhead_us = 0;
  /// Divide all sleeps by this to speed up benches while preserving ratios.
  double time_scale = 1.0;
  /// Probability in [0, 1] that a Get/GetRange/Put fails with
  /// Status::Transient after paying one TTFB round trip — models the
  /// 5xx/timeout churn real object stores emit under load. 0 (the default
  /// in every named profile) keeps existing benches deterministic; raise it
  /// (and chain a storage::RetryingStore) to study fault recovery.
  double transient_failure_rate = 0.0;
  /// Seed for the failure draw, so injected fault sequences reproduce.
  uint64_t failure_seed = 0x5eed;

  int64_t TransferMicros(uint64_t bytes) const {
    double us = first_byte_latency_us +
                static_cast<double>(bytes) / bandwidth_bytes_per_sec * 1e6;
    return static_cast<int64_t>(us / time_scale);
  }

  // ---- Named profiles (values representative of the paper's setups). ----

  /// Local NVMe filesystem: negligible latency, multi-GB/s.
  static NetworkModel LocalFs();
  /// AWS S3, client in the same region: ~12ms TTFB, ~95MB/s per stream,
  /// high request concurrency.
  static NetworkModel S3SameRegion();
  /// Object store in another region/cloud (the paper's Fig. 10 us-east ->
  /// us-central link): higher TTFB, lower per-stream bandwidth.
  static NetworkModel S3CrossRegion();
  /// MinIO on another machine in a LAN: low latency but a small connection
  /// pool and modest per-stream bandwidth — the paper observes both Deep
  /// Lake and WebDataset stream slower from MinIO than from S3 (Fig. 8).
  static NetworkModel MinioLan();
};

/// Wraps any provider and injects the model's delays on every operation.
class SimulatedObjectStore : public storage::StorageProvider {
 public:
  SimulatedObjectStore(storage::StoragePtr base, NetworkModel model);

  Result<Slice> Get(std::string_view key) override;
  Result<Slice> GetRange(std::string_view key, uint64_t offset,
                              uint64_t length) override;
  Status Put(std::string_view key, ByteView value) override;
  Status PutDurable(std::string_view key, ByteView value) override;
  bool atomic_durable_puts() const override {
    return base_->atomic_durable_puts();
  }
  void Invalidate(std::string_view key) override { base_->Invalidate(key); }
  Status Delete(std::string_view key) override;
  Result<bool> Exists(std::string_view key) override;
  Result<uint64_t> SizeOf(std::string_view key) override;
  Result<std::vector<std::string>> ListPrefix(
      std::string_view prefix) override;
  std::string name() const override {
    return "sim:" + model_.label + "(" + base_->name() + ")";
  }

  const NetworkModel& model() const { return model_; }

 private:
  /// Sleeps for the modeled duration of a `bytes`-sized transfer while
  /// holding a concurrency slot.
  void SimulateTransfer(uint64_t bytes, int64_t extra_us = 0);

  /// Draws against the model's transient_failure_rate; a failed draw costs
  /// one zero-byte round trip (the wasted request) and returns
  /// Status::Transient.
  Status MaybeInjectTransientFault();

  storage::StoragePtr base_;
  NetworkModel model_;
  Semaphore slots_;
  // Leaf lock: guards only the failure-draw Rng, never held across sleeps.
  Mutex fault_mu_{"sim.network_model.fault_mu"};
  Rng fault_rng_ DL_GUARDED_BY(fault_mu_);
  // Registry instruments (family `sim.net.*`, labeled {net=<label>}):
  // connection-pool queueing and service time, the knobs Fig. 8 varies.
  obs::Gauge* inflight_gauge_;
  obs::Histogram* queue_hist_;
  obs::Histogram* transfer_hist_;
};

}  // namespace dl::sim

#endif  // DEEPLAKE_SIM_NETWORK_MODEL_H_
