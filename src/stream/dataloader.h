#ifndef DEEPLAKE_STREAM_DATALOADER_H_
#define DEEPLAKE_STREAM_DATALOADER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/context.h"
#include "obs/metrics.h"
#include "tql/executor.h"
#include "tsf/dataset.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dl::stream {

/// One collated batch: per-tensor lists of samples in row order.
struct Batch {
  uint64_t size = 0;
  std::map<std::string, std::vector<tsf::Sample>> columns;

  /// Collates a column into one contiguous buffer (deep-learning native
  /// layout, batch-major). Fails if the column's samples are ragged.
  Result<tsf::Sample> Stacked(const std::string& column) const;
};

/// A row in flight through the pipeline.
using Row = std::map<std::string, tsf::Sample>;

/// Per-sample user transform, run inside worker threads (paper §4.6: the
/// transformation executes in parallel outside the interpreter lock — here,
/// plainly on the pool).
using TransformFn = std::function<Status(Row&)>;

struct DataloaderOptions {
  uint64_t batch_size = 32;
  /// Fetch/decode worker threads.
  size_t num_workers = 4;
  /// Streaming shuffle (paper §3.5): work units are visited in random
  /// order and decoded rows pass through a reservoir buffer.
  bool shuffle = false;
  /// Rows held in the shuffle reservoir.
  size_t shuffle_buffer_rows = 512;
  uint64_t seed = 42;
  /// Max work units (≈ chunks) fetched ahead of consumption; bounds
  /// memory (paper §4.6 "predicting memory consumption").
  size_t prefetch_units = 8;
  bool drop_last = false;
  /// Tensors to stream; empty = all visible tensors.
  std::vector<std::string> tensors;
  TransformFn transform;
  /// Extra fetch attempts per chunk/sample read that fails with a
  /// retryable status (Status::IsRetryable). 0 (default) preserves
  /// fail-fast: the first storage error poisons the epoch. Retries are
  /// immediate — chain a storage::RetryingStore under the dataset for
  /// backoff between attempts; this knob is the last line of defense when
  /// even the store-level budget runs out mid-epoch.
  int max_transient_retries = 0;
  /// Trace context of the owning job (DESIGN.md §7): installed on every
  /// worker while it processes a unit and on the consumer inside Next(),
  /// so loader spans — and the storage spans beneath them — share one
  /// trace id and carry the job's tenant label. Default (empty) costs
  /// nothing; create one with obs::Context::ForJob("tenant", "job").
  obs::Context context;
};

/// Epoch counters. Thread-safety contract (all fields are also mirrored
/// into the obs::MetricsRegistry, family `loader.*`):
///
///  - *Consumer-thread-only*: `rows_delivered`, `batches_delivered`,
///    `stall_micros`, `units` are written exclusively inside Next() while
///    holding the loader mutex. The consumer thread may read them between
///    Next() calls without synchronization; other threads may not.
///
///  - *Mutex-guarded (worker-written)*: `fetch_micros`, `decode_micros`,
///    `transform_micros`, `transient_errors_recovered` are accumulated by
///    worker threads under the loader mutex. Read them only after the
///    epoch has drained (Next() returned false, or the loader was
///    destroyed) — a mid-epoch read from the consumer thread races with
///    workers.
///
/// The per-stage micros sum CPU/IO time *across all workers*: with N
/// workers their total can legitimately exceed wall time (stages overlap).
struct DataloaderStats {
  uint64_t rows_delivered = 0;
  uint64_t batches_delivered = 0;
  /// Time Next() spent blocked waiting for the pipeline.
  int64_t stall_micros = 0;
  /// Work units (chunk-aligned ranges) processed.
  uint64_t units = 0;
  /// Fetches that failed with a retryable error but succeeded on a retry
  /// (max_transient_retries > 0) — the epoch survived these.
  uint64_t transient_errors_recovered = 0;
  /// Worker time spent in storage reads (chunk Get + tiled/tail reads;
  /// the tiled/tail path folds its decode into this figure).
  int64_t fetch_micros = 0;
  /// Worker time spent parsing chunks and materializing samples.
  int64_t decode_micros = 0;
  /// Worker time spent inside the user transform.
  int64_t transform_micros = 0;
  /// Process-wide bytes deep-copied through the Buffer/Slice layer while
  /// this loader ran (delta of dl::TotalBytesCopied(), sampled in Next()).
  /// Consumer-thread-only, like rows_delivered. The steady-state epoch loop
  /// over raw/uncompressed htypes should keep this near zero (DESIGN.md
  /// §10); collation via Batch::Stacked is counted.
  uint64_t bytes_copied = 0;
};

/// Streaming dataloader (paper §4.6): schedules chunk-aligned fetches,
/// decompresses in parallel workers, applies user transforms, shuffles via
/// a buffer, and collates batches — while a bounded prefetch window keeps
/// memory flat and the consumer (GPU) fed.
///
/// Iterate: `while (loader.Next(&batch)) { ... }`. One pass; construct a
/// new loader per epoch (cheap).
class Dataloader {
 public:
  /// Streams the whole dataset in index order (or shuffled).
  Dataloader(std::shared_ptr<tsf::Dataset> dataset, DataloaderOptions options);

  /// Streams a query view's rows in the view's order (paper §4.4 "seamless
  /// integration with the dataloader for filtered streaming"). Sparse views
  /// produce fragmented work units — the §4.5 penalty that materialization
  /// removes.
  Dataloader(std::shared_ptr<tsf::Dataset> dataset,
             const tql::DatasetView& view, DataloaderOptions options);

  ~Dataloader();

  Dataloader(const Dataloader&) = delete;
  Dataloader& operator=(const Dataloader&) = delete;

  /// Produces the next batch; returns false at end of stream. On worker
  /// errors, returns the first error and stops.
  Result<bool> Next(Batch* out) DL_EXCLUDES(mu_);

  /// Unlocked by design — see the DataloaderStats thread-safety contract:
  /// consumer-thread fields are safe between Next() calls; worker-written
  /// fields only after the epoch drains.
  const DataloaderStats& stats() const DL_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }

 private:
  struct Unit {
    uint64_t seq;                  // completion-order key (sequential mode)
    std::vector<uint64_t> rows;    // dataset row indices
  };

  void Start();
  void ProcessUnit(const Unit& unit) DL_EXCLUDES(mu_);

  /// Builds chunk-aligned work units from the ordered row list.
  std::vector<Unit> PlanUnits(const std::vector<uint64_t>& order) const;

  std::shared_ptr<tsf::Dataset> dataset_;
  DataloaderOptions options_;
  std::vector<std::string> tensors_;
  std::vector<Unit> units_;
  std::unique_ptr<ThreadPool> pool_;

  // Leaf lock (DESIGN.md §8): workers and the consumer never acquire
  // another dl::Mutex while holding it (registry instruments are atomics).
  Mutex mu_{"stream.dataloader.mu"};
  // Ordered prefetch window: the task at visit position k may start only
  // once k < start_allowance_. Admission strictly by position prevents
  // later units from stealing window slots from the unit the (in-order)
  // consumer is waiting on — a semaphore here can deadlock by priority
  // inversion.
  size_t start_allowance_ DL_GUARDED_BY(mu_) = 0;
  CondVar gate_cv_;
  CondVar ready_cv_;
  // Sequential mode: per-unit progress keyed by seq; rows stream in as
  // they decode (the consumer never waits for a whole unit), and are
  // consumed strictly in seq order.
  struct UnitProgress {
    std::vector<Row> rows;
    size_t taken = 0;
    bool done = false;
  };
  std::map<uint64_t, UnitProgress> completed_ DL_GUARDED_BY(mu_);
  uint64_t next_seq_ DL_GUARDED_BY(mu_) = 0;
  // Shuffle mode: reservoir of decoded rows.
  std::vector<Row> reservoir_ DL_GUARDED_BY(mu_);
  CondVar reservoir_cv_;
  size_t units_done_ DL_GUARDED_BY(mu_) = 0;
  Status first_error_ DL_GUARDED_BY(mu_);
  bool started_ = false;  // ctor-thread only (Start() runs in the ctor)
  bool abort_ DL_GUARDED_BY(mu_) = false;

  // Carry-over rows between Next() calls (batch boundary inside a unit).
  // Touched only by the consumer thread inside Next(), but always under
  // mu_ anyway (Next() holds it throughout), so the annotation is honest.
  std::vector<Row> pending_rows_ DL_GUARDED_BY(mu_);
  Rng shuffle_rng_{42};  // consumer-thread only (used inside Next())

  DataloaderStats stats_;  // see stats() for the mixed guarding contract
  // Registry instruments (family `loader.*`), cached once in Start() so
  // the hot path touches only atomics. Workers observe per-op latencies;
  // stats_ aggregates per-stage totals for the epoch summary.
  obs::Histogram* fetch_hist_ = nullptr;
  obs::Histogram* decode_hist_ = nullptr;
  obs::Histogram* transform_hist_ = nullptr;
  obs::Histogram* stall_hist_ = nullptr;
  obs::Counter* rows_counter_ = nullptr;
  obs::Counter* bytes_copied_counter_ = nullptr;
  // Last TotalBytesCopied() sample; Next() accumulates deltas into
  // stats_.bytes_copied. Consumer-thread only.
  uint64_t copied_watermark_ = 0;
  // Decoded-but-undelivered rows (reservoir + completed units + pending).
  // A rising series means the consumer is the bottleneck; pinned at zero
  // means the loader is — the flight-recorder signal for Fig. 9 plots.
  obs::Gauge* queued_gauge_ = nullptr;
};

}  // namespace dl::stream

#endif  // DEEPLAKE_STREAM_DATALOADER_H_
