#include "stream/dataloader.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/macros.h"

namespace dl::stream {

// ---------------------------------------------------------------------------
// Batch
// ---------------------------------------------------------------------------

Result<tsf::Sample> Batch::Stacked(const std::string& column) const {
  auto it = columns.find(column);
  if (it == columns.end()) {
    return Status::NotFound("batch: no column '" + column + "'");
  }
  const std::vector<tsf::Sample>& samples = it->second;
  if (samples.empty()) {
    return Status::FailedPrecondition("batch: empty column");
  }
  const tsf::TensorShape& shape0 = samples[0].shape;
  for (const auto& s : samples) {
    if (!(s.shape == shape0) || s.dtype != samples[0].dtype) {
      return Status::FailedPrecondition(
          "batch: column '" + column +
          "' is ragged; stack requires uniform shapes (apply a resize "
          "transform)");
    }
  }
  std::vector<uint64_t> out_dims;
  out_dims.push_back(samples.size());
  for (uint64_t d : shape0.dims()) out_dims.push_back(d);
  tsf::TensorShape out_shape(std::move(out_dims));
  if (samples.size() == 1) {
    // A batch of one aliases the sample's buffer — zero copy.
    return tsf::Sample(samples[0].dtype, std::move(out_shape),
                       samples[0].data);
  }
  ByteBuffer staging;
  staging.reserve(samples.size() * samples[0].data.size());
  for (const auto& s : samples) {
    staging.insert(staging.end(), s.data.begin(), s.data.end());
  }
  // Collation is the one copy the batch-major layout forces; account for it
  // so loader.bytes_copied stays an honest end-to-end figure.
  internal::AddBytesCopied(staging.size());
  return tsf::Sample(samples[0].dtype, std::move(out_shape),
                     Slice(std::move(staging)));
}

// ---------------------------------------------------------------------------
// Dataloader
// ---------------------------------------------------------------------------

Dataloader::Dataloader(std::shared_ptr<tsf::Dataset> dataset,
                       DataloaderOptions options)
    : dataset_(std::move(dataset)),
      options_(std::move(options)),
      shuffle_rng_(options_.seed) {
  tensors_ = options_.tensors.empty() ? dataset_->TensorNames()
                                      : options_.tensors;
  std::vector<uint64_t> order(dataset_->NumRows());
  for (uint64_t i = 0; i < order.size(); ++i) order[i] = i;
  units_ = PlanUnits(order);
  Start();
}

Dataloader::Dataloader(std::shared_ptr<tsf::Dataset> dataset,
                       const tql::DatasetView& view,
                       DataloaderOptions options)
    : dataset_(std::move(dataset)),
      options_(std::move(options)),
      shuffle_rng_(options_.seed) {
  tensors_ = options_.tensors.empty() ? dataset_->TensorNames()
                                      : options_.tensors;
  units_ = PlanUnits(view.indices());
  Start();
}

Dataloader::~Dataloader() {
  {
    MutexLock lock(mu_);
    abort_ = true;
  }
  reservoir_cv_.NotifyAll();
  gate_cv_.NotifyAll();
  ready_cv_.NotifyAll();
  pool_.reset();  // joins workers
  // Undeliverable rows still buffered at teardown would otherwise leave
  // the queue-depth gauge stuck above zero for the next epoch's loader.
  // Workers are joined, but take the lock anyway — it is free here and
  // keeps the guarded-access annotations honest.
  if (queued_gauge_ != nullptr) {
    MutexLock lock(mu_);
    double leftover = static_cast<double>(reservoir_.size()) +
                      static_cast<double>(pending_rows_.size());
    for (const auto& [seq, p] : completed_) {
      leftover += static_cast<double>(p.rows.size() - p.taken);
    }
    if (leftover > 0) queued_gauge_->Sub(leftover);
  }
}

std::vector<Dataloader::Unit> Dataloader::PlanUnits(
    const std::vector<uint64_t>& order) const {
  // Pick the finest-chunked tensor as the primary alignment target: its
  // chunk boundaries dominate fetch cost.
  const tsf::ChunkEncoder* primary = nullptr;
  for (const auto& name : tensors_) {
    auto t = dataset_->GetTensor(name);
    if (!t.ok()) continue;
    const tsf::ChunkEncoder& enc = (*t)->chunk_encoder();
    if (primary == nullptr || enc.num_chunks() > primary->num_chunks()) {
      primary = &enc;
    }
  }
  std::vector<Unit> units;
  Unit current;
  current.seq = 0;
  size_t current_ordinal = SIZE_MAX;
  for (uint64_t row : order) {
    size_t ordinal = SIZE_MAX;
    if (primary != nullptr) {
      auto loc = primary->Find(row);
      if (loc.ok()) ordinal = loc->chunk_ordinal;
    }
    // A new unit starts when the primary chunk changes: all rows served by
    // one chunk share one fetch, even when a sparse view skips between
    // them. (The sparse-view penalty of §4.5 remains — the full chunk is
    // fetched however few of its rows the view selects.)
    bool breaks = current.rows.empty() ? false : ordinal != current_ordinal;
    if (breaks) {
      units.push_back(std::move(current));
      current = Unit{};
      current.seq = units.size();
    }
    current_ordinal = ordinal;
    current.rows.push_back(row);
  }
  if (!current.rows.empty()) units.push_back(std::move(current));
  return units;
}

void Dataloader::Start() {
  if (started_) return;
  started_ = true;
  auto& registry = obs::MetricsRegistry::Global();
  fetch_hist_ = registry.GetHistogram("loader.fetch_us");
  decode_hist_ = registry.GetHistogram("loader.decode_us");
  transform_hist_ = registry.GetHistogram("loader.transform_us");
  stall_hist_ = registry.GetHistogram("loader.stall_us");
  rows_counter_ = registry.GetCounter("loader.rows");
  bytes_copied_counter_ = registry.GetCounter("loader.bytes_copied");
  queued_gauge_ = registry.GetGauge("loader.queued_rows");
  copied_watermark_ = TotalBytesCopied();
  // Visit units in shuffled order for shuffled streams (chunk-level
  // shuffle); the reservoir adds sample-level randomness (§3.5).
  std::vector<size_t> visit(units_.size());
  for (size_t i = 0; i < visit.size(); ++i) visit[i] = i;
  if (options_.shuffle) {
    Rng rng(options_.seed ^ 0x5eed);
    for (size_t i = visit.size(); i > 1; --i) {
      std::swap(visit[i - 1], visit[rng.Uniform(i)]);
    }
    // Re-number sequence keys to the visit order so sequential consumption
    // logic can be reused for bookkeeping.
    for (size_t k = 0; k < visit.size(); ++k) units_[visit[k]].seq = k;
  }
  start_allowance_ = std::max<size_t>(1, options_.prefetch_units);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  for (size_t pos = 0; pos < visit.size(); ++pos) {
    const Unit* unit = &units_[visit[pos]];
    pool_->Submit([this, unit, pos] {
      {
        MutexLock lock(mu_);
        while (!(abort_ || !first_error_.ok() || pos < start_allowance_)) {
          gate_cv_.Wait(mu_);
        }
        if (abort_ || !first_error_.ok()) {
          ++units_done_;
          ready_cv_.NotifyAll();
          return;
        }
      }
      ProcessUnit(*unit);
    });
  }
}

void Dataloader::ProcessUnit(const Unit& unit) {
  // Worker threads adopt the job's trace context for the unit's duration:
  // every span below (loader.fetch → storage.op) inherits its trace id.
  obs::ContextScope context_scope(options_.context);
  Status status;
  size_t cap = std::max<size_t>(1, options_.shuffle_buffer_rows);
  // Per-stage timing, accumulated locally and merged into stats_ once at
  // unit end (workers never contend on the mutex per sample). Each op also
  // lands in a registry histogram and, when tracing is on, a span.
  int64_t fetch_us = 0, decode_us = 0, transform_us = 0;
  auto timed = [](obs::Histogram* hist, int64_t* acc, const char* span_name,
                  auto&& fn) {
    obs::ScopedSpan span(span_name, "loader");
    int64_t t0 = NowMicros();
    auto r = fn();
    int64_t dt = NowMicros() - t0;
    *acc += dt;
    hist->Observe(static_cast<double>(dt));
    return r;
  };
  // Publishes one decoded row immediately (shuffle: into the reservoir,
  // honoring its capacity; sequential: into the unit's progress entry), so
  // consumption overlaps decoding from the first sample.
  auto publish = [&](Row row) {
    if (options_.shuffle) {
      MutexLock lock(mu_);
      while (!(abort_ || reservoir_.size() < cap)) {
        reservoir_cv_.Wait(mu_);
      }
      if (abort_) return;
      reservoir_.push_back(std::move(row));
    } else {
      MutexLock lock(mu_);
      completed_[unit.seq].rows.push_back(std::move(row));
    }
    queued_gauge_->Add(1);
    ready_cv_.NotifyAll();
  };
  // Bounded re-fetch on retryable storage errors: a transient object-store
  // fault recovers instead of poisoning the whole epoch. Retries are
  // immediate — backoff belongs to the RetryingStore decorator underneath;
  // permanent errors (NotFound, Corruption, ...) still fail fast. Every
  // transient failure lands on the error-event timeline labeled with the
  // op and key (`describe` is only invoked on failure — the hot path never
  // builds the label string).
  auto fetch_with_retry = [&](const char* op, auto&& describe, auto&& fetch) {
    auto r = fetch();
    for (int attempt = 0; attempt < options_.max_transient_retries &&
                          !r.ok() && r.status().IsRetryable();
         ++attempt) {
      obs::RecordErrorEvent(
          obs::TraceRecorder::Global(), "loader.transient_fetch",
          "op=" + std::string(op) + " key=" + describe() + " attempt=" +
              std::to_string(attempt + 1) + " " + r.status().ToString());
      r = fetch();
      if (r.ok()) {
        MutexLock lock(mu_);
        stats_.transient_errors_recovered++;
      }
    }
    if (!r.ok() && r.status().IsRetryable()) {
      // Out of budget (or none configured): this failure poisons the epoch.
      obs::RecordErrorEvent(
          obs::TraceRecorder::Global(), "loader.fetch_failed",
          "op=" + std::string(op) + " key=" + describe() + " " +
              r.status().ToString());
    }
    return r;
  };
  // Per-unit, per-tensor chunk cache: each chunk is fetched and parsed
  // once even when it serves many rows.
  std::map<std::string, std::map<uint64_t, std::shared_ptr<tsf::Chunk>>>
      cache;
  for (uint64_t row_idx : unit.rows) {
    Row row;
    for (const auto& name : tensors_) {
      auto tr = dataset_->GetTensor(name);
      if (!tr.ok()) {
        status = tr.status();
        break;
      }
      tsf::Tensor* t = *tr;
      if (row_idx >= t->NumSamples()) {
        row[name] = tsf::Sample::EmptyOf(t->meta().dtype);
        continue;
      }
      if (t->tile_encoder().IsTiled(row_idx)) {
        // Tensor-level reads fetch and decode in one call; the whole cost
        // is attributed to fetch (see DataloaderStats doc).
        auto s = timed(fetch_hist_, &fetch_us, "loader.fetch",
                       [&] { return fetch_with_retry("read", [&] {
                         return name + "[" + std::to_string(row_idx) + "]";
                       }, [&] { return t->Read(row_idx); }); });
        if (!s.ok()) {
          status = s.status();
          break;
        }
        row[name] = std::move(s).value();
        continue;
      }
      auto loc = t->chunk_encoder().Find(row_idx);
      if (!loc.ok()) {
        // Buffered (unflushed) tail: serve through the tensor.
        auto s = timed(fetch_hist_, &fetch_us, "loader.fetch",
                       [&] { return fetch_with_retry("read", [&] {
                         return name + "[" + std::to_string(row_idx) + "]";
                       }, [&] { return t->Read(row_idx); }); });
        if (!s.ok()) {
          status = s.status();
          break;
        }
        row[name] = std::move(s).value();
        continue;
      }
      auto& tensor_cache = cache[name];
      auto it = tensor_cache.find(loc->chunk_id);
      if (it == tensor_cache.end()) {
        auto bytes = timed(fetch_hist_, &fetch_us, "loader.fetch",
                           [&] { return fetch_with_retry("chunk_get", [&] {
                             return t->ChunkKey(loc->chunk_id);
                           }, [&] { return t->store()->Get(
                                 t->ChunkKey(loc->chunk_id)); }); });
        if (!bytes.ok()) {
          status = bytes.status();
          break;
        }
        auto chunk = timed(decode_hist_, &decode_us, "loader.decode",
                           [&] { return tsf::Chunk::Parse(
                               std::move(bytes).value(),
                               /*verify_checksum=*/false); });
        if (!chunk.ok()) {
          status = chunk.status();
          break;
        }
        it = tensor_cache
                 .emplace(loc->chunk_id, std::make_shared<tsf::Chunk>(
                                             std::move(chunk).value()))
                 .first;
      }
      auto s = timed(decode_hist_, &decode_us, "loader.decode",
                     [&] { return it->second->ReadSample(loc->local_index); });
      if (!s.ok()) {
        status = s.status();
        break;
      }
      row[name] = std::move(s).value();
    }
    if (!status.ok()) break;
    if (options_.transform) {
      status = timed(transform_hist_, &transform_us, "loader.transform",
                     [&] { return options_.transform(row); });
      if (!status.ok()) break;
    }
    publish(std::move(row));
  }

  {
    MutexLock lock(mu_);
    if (!status.ok() && first_error_.ok()) first_error_ = status;
    if (!options_.shuffle) completed_[unit.seq].done = true;
    units_done_++;
    if (options_.shuffle) ++start_allowance_;
    stats_.fetch_micros += fetch_us;
    stats_.decode_micros += decode_us;
    stats_.transform_micros += transform_us;
  }
  if (options_.shuffle) gate_cv_.NotifyAll();
  ready_cv_.NotifyAll();
}

Result<bool> Dataloader::Next(Batch* out) {
  // The consumer adopts the job's context too: loader.next / loader.stall
  // spans join the same trace as the worker-side fetches.
  obs::ContextScope context_scope(options_.context);
  obs::ScopedSpan next_span("loader.next", "loader");
  out->columns.clear();
  out->size = 0;
  int64_t wait_start = NowMicros();
  bool stalled = false;

  MutexLock lock(mu_);
  while (pending_rows_.size() < options_.batch_size) {
    if (!first_error_.ok()) return first_error_;
    if (options_.shuffle) {
      if (!reservoir_.empty()) {
        // Random eviction from the reservoir.
        size_t pick = shuffle_rng_.Uniform(reservoir_.size());
        std::swap(reservoir_[pick], reservoir_.back());
        pending_rows_.push_back(std::move(reservoir_.back()));
        reservoir_.pop_back();
        reservoir_cv_.NotifyOne();
        continue;
      }
      if (units_done_ == units_.size()) break;  // drained
    } else {
      auto it = completed_.find(next_seq_);
      if (it != completed_.end()) {
        UnitProgress& p = it->second;
        bool progressed = p.taken < p.rows.size();
        while (p.taken < p.rows.size()) {
          pending_rows_.push_back(std::move(p.rows[p.taken++]));
        }
        if (p.done && p.taken == p.rows.size()) {
          completed_.erase(it);
          ++next_seq_;
          ++stats_.units;
          ++start_allowance_;
          gate_cv_.NotifyAll();
          continue;
        }
        if (progressed) continue;
      }
      if (next_seq_ >= units_.size()) break;  // drained
    }
    stalled = true;
    if (getenv("DL_DEBUG_LOADER") != nullptr) {
      fprintf(stderr, "[loader] waiting: next_seq=%llu units=%zu done=%zu completed={",
              (unsigned long long)next_seq_, units_.size(), units_done_);
      for (auto& [k, v] : completed_) fprintf(stderr, "%llu,", (unsigned long long)k);
      fprintf(stderr, "} pending=%zu\n", pending_rows_.size());
    }
    ready_cv_.Wait(mu_);
  }
  if (stalled) {
    int64_t stall = NowMicros() - wait_start;
    stats_.stall_micros += stall;
    stall_hist_->Observe(static_cast<double>(stall));
    // The consumer-starved interval the paper's utilization plots hinge
    // on: visible as a gap-filling span on the consumer thread's track.
    auto& recorder = obs::TraceRecorder::Global();
    if (recorder.enabled()) {
      recorder.Record("loader.stall", "loader", wait_start, stall);
    }
  }

  // Fold the copy-accounting delta since the last Next() into the epoch
  // stats (covers worker-side copies too: the global counter is atomic).
  uint64_t copied_now = TotalBytesCopied();
  if (copied_now > copied_watermark_) {
    uint64_t delta = copied_now - copied_watermark_;
    copied_watermark_ = copied_now;
    stats_.bytes_copied += delta;
    bytes_copied_counter_->Add(delta);
  }

  if (pending_rows_.empty()) return false;  // end of stream
  uint64_t take = std::min<uint64_t>(options_.batch_size,
                                     pending_rows_.size());
  if (take < options_.batch_size && options_.drop_last) {
    pending_rows_.clear();
    return false;
  }
  for (uint64_t i = 0; i < take; ++i) {
    for (auto& [name, sample] : pending_rows_[i]) {
      out->columns[name].push_back(std::move(sample));
    }
  }
  pending_rows_.erase(pending_rows_.begin(), pending_rows_.begin() + take);
  out->size = take;
  stats_.rows_delivered += take;
  stats_.batches_delivered += 1;
  rows_counter_->Add(take);
  queued_gauge_->Sub(static_cast<double>(take));
  return true;
}

}  // namespace dl::stream
