#ifndef DEEPLAKE_TQL_LEXER_H_
#define DEEPLAKE_TQL_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace dl::tql {

enum class TokenKind {
  kEnd,
  kIdent,     // tensor / function / keyword candidates
  kNumber,
  kString,    // 'quoted' or "quoted"
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,
  kColon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // = or ==
  kNe,        // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier / string contents
  double number = 0;  // for kNumber
  size_t offset = 0;  // byte offset in the query (for error messages)
};

/// Tokenizes a TQL query. Keywords are returned as kIdent and matched
/// case-insensitively by the parser (SQL style).
Result<std::vector<Token>> Lex(const std::string& query);

/// True when `token` is an identifier matching `keyword` case-insensitively.
/// `keyword` must be uppercase. Allocation-free — this is the single point
/// of keyword recognition for the parser.
bool TokenIsKeyword(const Token& token, const char* keyword);

}  // namespace dl::tql

#endif  // DEEPLAKE_TQL_LEXER_H_
