#include "tql/executor.h"

#include <algorithm>
#include <cmath>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tql/parser.h"
#include "util/clock.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace dl::tql {

namespace {

double OpAdd(double a, double b) { return a + b; }
double OpSub(double a, double b) { return a - b; }
double OpMul(double a, double b) { return a * b; }
double OpDiv(double a, double b) { return b != 0 ? a / b : 0.0; }
double OpMod(double a, double b) {
  return b != 0 ? std::fmod(a, b) : 0.0;
}
double OpEq(double a, double b) { return a == b ? 1 : 0; }
double OpNe(double a, double b) { return a != b ? 1 : 0; }
double OpLt(double a, double b) { return a < b ? 1 : 0; }
double OpLe(double a, double b) { return a <= b ? 1 : 0; }
double OpGt(double a, double b) { return a > b ? 1 : 0; }
double OpGe(double a, double b) { return a >= b ? 1 : 0; }

/// Resolves a value that should be an array; string values are treated as
/// tensor references (the paper's IOU(boxes, "training/boxes") idiom).
Result<NdArray> AsArray(const Value& v, EvalContext& ctx,
                        const char* what) {
  if (v.is_array()) return v.array();
  if (v.is_string()) {
    DL_ASSIGN_OR_RETURN(Value col, ctx.Column(v.str()));
    if (col.is_array()) return col.array();
    return Status::InvalidArgument(std::string("tql: ") + what +
                                   ": tensor '" + v.str() +
                                   "' is not numeric");
  }
  return Status::InvalidArgument(std::string("tql: ") + what +
                                 " expects an array, got null");
}

Result<int64_t> AsIndex(const Value& v, const char* what) {
  if (!v.is_array() || !v.array().IsScalar()) {
    return Status::InvalidArgument(std::string("tql: ") + what +
                                   " must be a scalar");
  }
  return static_cast<int64_t>(v.array().AsScalar());
}

bool IsKnownFunction(const std::string& fn) {
  static const char* kKnown[] = {
      "MEAN", "SUM",  "MIN",       "MAX",   "STD",   "L2",    "ANY",
      "ALL",  "ABS",  "CLIP",      "SHAPE", "LEN",   "LENGTH", "IOU",
      "NORMALIZE",    "CONTAINS",  "LOWER", "UPPER", "ROW_NUMBER", "COUNT"};
  for (const char* k : kKnown) {
    if (fn == k) return true;
  }
  return false;
}

/// Static semantic validation: unknown columns and functions fail at query
/// time, not lazily on first cell access.
Status ValidateExpr(const Expr& expr, tsf::Dataset* ds) {
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      if (!ds->HasTensor(expr.text)) {
        return Status::NotFound("tql: no tensor '" + expr.text + "'");
      }
      return Status::OK();
    case Expr::Kind::kCall:
      if (!IsKnownFunction(expr.text)) {
        return Status::NotImplemented("tql: unknown function " + expr.text);
      }
      break;
    default:
      break;
  }
  if (expr.lhs) DL_RETURN_IF_ERROR(ValidateExpr(*expr.lhs, ds));
  if (expr.rhs) DL_RETURN_IF_ERROR(ValidateExpr(*expr.rhs, ds));
  for (const auto& a : expr.args) DL_RETURN_IF_ERROR(ValidateExpr(*a, ds));
  for (const auto& s : expr.slices) {
    if (s.index) DL_RETURN_IF_ERROR(ValidateExpr(*s.index, ds));
    if (s.start) DL_RETURN_IF_ERROR(ValidateExpr(*s.start, ds));
    if (s.stop) DL_RETURN_IF_ERROR(ValidateExpr(*s.stop, ds));
    if (s.step) DL_RETURN_IF_ERROR(ValidateExpr(*s.step, ds));
  }
  return Status::OK();
}

}  // namespace

Result<Value> EvalContext::Column(const std::string& name) {
  auto it = cache_.find(name);
  if (it != cache_.end()) {
    if (io_ != nullptr) ++io_->cache_hits;
    return it->second;
  }
  // Qualified JOIN reference: "alias/tensor" -> the bound dataset/row.
  size_t slash = name.find('/');
  if (slash != std::string::npos) {
    auto binding = bindings_.find(name.substr(0, slash));
    if (binding != bindings_.end()) {
      DL_ASSIGN_OR_RETURN(Value v,
                          Load(binding->second.first, binding->second.second,
                               name.substr(slash + 1)));
      cache_[name] = v;
      return v;
    }
  }
  DL_ASSIGN_OR_RETURN(Value v, Load(dataset_, row_, name));
  cache_[name] = v;
  return v;
}

Result<Value> EvalContext::Load(tsf::Dataset* dataset, uint64_t row,
                                const std::string& name) {
  DL_ASSIGN_OR_RETURN(tsf::Tensor * tensor, dataset->GetTensor(name));
  if (row >= tensor->NumSamples()) {
    return Value::Null();
  }
  DL_ASSIGN_OR_RETURN(tsf::Sample s, tensor->Read(row));
  if (io_ != nullptr) {
    ++io_->loads;
    io_->bytes_loaded += s.data.size();
  }
  Value v;
  if (s.shape.IsEmptySample() && s.data.empty() && s.shape.ndim() > 0) {
    v = Value::Null();
  } else if (tensor->meta().htype.kind == tsf::HtypeKind::kText ||
             tensor->meta().htype.is_link) {
    v = Value(s.AsString());
  } else {
    v = Value(NdArray::FromSample(s));
  }
  return v;
}

Result<Value> Evaluate(const Expr& expr, EvalContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      return Value::Number(expr.number);
    case Expr::Kind::kString:
      return Value(expr.text);
    case Expr::Kind::kColumn:
      return ctx.Column(expr.text);
    case Expr::Kind::kStarAll:
      return Status::InvalidArgument("tql: '*' is only valid in SELECT");
    case Expr::Kind::kArray: {
      std::vector<double> data;
      data.reserve(expr.args.size());
      for (const auto& arg : expr.args) {
        DL_ASSIGN_OR_RETURN(Value v, Evaluate(*arg, ctx));
        if (!v.is_array() || !v.array().IsScalar()) {
          return Status::InvalidArgument(
              "tql: array literal elements must be scalars");
        }
        data.push_back(v.array().AsScalar());
      }
      uint64_t count = data.size();
      return Value(NdArray({count}, std::move(data)));
    }
    case Expr::Kind::kUnary: {
      DL_ASSIGN_OR_RETURN(Value v, Evaluate(*expr.lhs, ctx));
      if (expr.uop == UnaryOp::kNot) {
        return Value::Bool(!v.Truthy());
      }
      DL_ASSIGN_OR_RETURN(NdArray arr, AsArray(v, ctx, "unary -"));
      for (double& d : arr.data()) d = -d;
      return Value(std::move(arr));
    }
    case Expr::Kind::kBinary: {
      // Short-circuit logical operators on truthiness.
      if (expr.bop == BinaryOp::kAnd || expr.bop == BinaryOp::kOr) {
        DL_ASSIGN_OR_RETURN(Value l, Evaluate(*expr.lhs, ctx));
        bool lt = l.Truthy();
        if (expr.bop == BinaryOp::kAnd && !lt) return Value::Bool(false);
        if (expr.bop == BinaryOp::kOr && lt) return Value::Bool(true);
        DL_ASSIGN_OR_RETURN(Value r, Evaluate(*expr.rhs, ctx));
        return Value::Bool(r.Truthy());
      }
      DL_ASSIGN_OR_RETURN(Value l, Evaluate(*expr.lhs, ctx));
      DL_ASSIGN_OR_RETURN(Value r, Evaluate(*expr.rhs, ctx));
      // String comparisons.
      if (l.is_string() && r.is_string()) {
        switch (expr.bop) {
          case BinaryOp::kEq:
            return Value::Bool(l.str() == r.str());
          case BinaryOp::kNe:
            return Value::Bool(l.str() != r.str());
          case BinaryOp::kLt:
            return Value::Bool(l.str() < r.str());
          case BinaryOp::kLe:
            return Value::Bool(l.str() <= r.str());
          case BinaryOp::kGt:
            return Value::Bool(l.str() > r.str());
          case BinaryOp::kGe:
            return Value::Bool(l.str() >= r.str());
          case BinaryOp::kAdd:
            return Value(l.str() + r.str());
          default:
            return Status::InvalidArgument(
                "tql: unsupported operator on strings");
        }
      }
      if (l.is_null() || r.is_null()) {
        // SQL-ish null semantics: comparisons with null are false, `=`
        // against null matches only null.
        if (expr.bop == BinaryOp::kEq) {
          return Value::Bool(l.is_null() && r.is_null());
        }
        if (expr.bop == BinaryOp::kNe) {
          return Value::Bool(l.is_null() != r.is_null());
        }
        return Value::Null();
      }
      DL_ASSIGN_OR_RETURN(NdArray la, AsArray(l, ctx, "binary op"));
      DL_ASSIGN_OR_RETURN(NdArray ra, AsArray(r, ctx, "binary op"));
      double (*op)(double, double) = nullptr;
      switch (expr.bop) {
        case BinaryOp::kAdd:
          op = OpAdd;
          break;
        case BinaryOp::kSub:
          op = OpSub;
          break;
        case BinaryOp::kMul:
          op = OpMul;
          break;
        case BinaryOp::kDiv:
          op = OpDiv;
          break;
        case BinaryOp::kMod:
          op = OpMod;
          break;
        case BinaryOp::kEq:
          op = OpEq;
          break;
        case BinaryOp::kNe:
          op = OpNe;
          break;
        case BinaryOp::kLt:
          op = OpLt;
          break;
        case BinaryOp::kLe:
          op = OpLe;
          break;
        case BinaryOp::kGt:
          op = OpGt;
          break;
        case BinaryOp::kGe:
          op = OpGe;
          break;
        default:
          return Status::InvalidArgument("tql: bad binary operator");
      }
      DL_ASSIGN_OR_RETURN(
          NdArray out, ElementwiseBinary(la, ra, op, "binary"));
      // Whole-array comparisons used as predicates collapse to ALL(...)
      // for equality-style checks when both sides are arrays of equal
      // shape; scalar results stay as-is. We keep elementwise results and
      // let Truthy() (ANY) decide in boolean contexts.
      return Value(std::move(out));
    }
    case Expr::Kind::kIndex: {
      DL_ASSIGN_OR_RETURN(Value base, Evaluate(*expr.lhs, ctx));
      DL_ASSIGN_OR_RETURN(NdArray arr, AsArray(base, ctx, "indexing"));
      std::vector<SliceSpec> specs;
      specs.reserve(expr.slices.size());
      for (const auto& se : expr.slices) {
        SliceSpec spec;
        if (se.is_index) {
          DL_ASSIGN_OR_RETURN(Value v, Evaluate(*se.index, ctx));
          DL_ASSIGN_OR_RETURN(spec.index, AsIndex(v, "index"));
          spec.is_index = true;
        } else {
          if (se.start) {
            DL_ASSIGN_OR_RETURN(Value v, Evaluate(*se.start, ctx));
            DL_ASSIGN_OR_RETURN(spec.start, AsIndex(v, "slice start"));
            spec.has_start = true;
          }
          if (se.stop) {
            DL_ASSIGN_OR_RETURN(Value v, Evaluate(*se.stop, ctx));
            DL_ASSIGN_OR_RETURN(spec.stop, AsIndex(v, "slice stop"));
            spec.has_stop = true;
          }
          if (se.step) {
            DL_ASSIGN_OR_RETURN(Value v, Evaluate(*se.step, ctx));
            DL_ASSIGN_OR_RETURN(spec.step, AsIndex(v, "slice step"));
            spec.has_step = true;
          }
        }
        specs.push_back(spec);
      }
      DL_ASSIGN_OR_RETURN(NdArray out, SliceArray(arr, specs));
      return Value(std::move(out));
    }
    case Expr::Kind::kCall: {
      const std::string& fn = expr.text;
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        DL_ASSIGN_OR_RETURN(Value v, Evaluate(*a, ctx));
        args.push_back(std::move(v));
      }
      auto need = [&](size_t n) -> Status {
        if (args.size() != n) {
          return Status::InvalidArgument("tql: " + fn + " expects " +
                                         std::to_string(n) + " argument(s)");
        }
        return Status::OK();
      };
      if (fn == "MEAN" || fn == "SUM" || fn == "MIN" || fn == "MAX" ||
          fn == "STD" || fn == "L2" || fn == "ANY" || fn == "ALL") {
        DL_RETURN_IF_ERROR(need(1));
        DL_ASSIGN_OR_RETURN(NdArray a, AsArray(args[0], ctx, fn.c_str()));
        if (fn == "MEAN") return Value::Number(ReduceMean(a));
        if (fn == "SUM") return Value::Number(ReduceSum(a));
        if (fn == "MIN") return Value::Number(ReduceMin(a));
        if (fn == "MAX") return Value::Number(ReduceMax(a));
        if (fn == "STD") return Value::Number(ReduceStd(a));
        if (fn == "L2") return Value::Number(ReduceL2(a));
        if (fn == "ANY") return Value::Bool(ReduceAny(a));
        return Value::Bool(ReduceAll(a));
      }
      if (fn == "ABS") {
        DL_RETURN_IF_ERROR(need(1));
        DL_ASSIGN_OR_RETURN(NdArray a, AsArray(args[0], ctx, "ABS"));
        for (double& d : a.data()) d = std::fabs(d);
        return Value(std::move(a));
      }
      if (fn == "CLIP") {
        DL_RETURN_IF_ERROR(need(3));
        DL_ASSIGN_OR_RETURN(NdArray a, AsArray(args[0], ctx, "CLIP"));
        DL_ASSIGN_OR_RETURN(int64_t lo, AsIndex(args[1], "CLIP lo"));
        DL_ASSIGN_OR_RETURN(int64_t hi, AsIndex(args[2], "CLIP hi"));
        for (double& d : a.data()) {
          d = std::min(std::max(d, static_cast<double>(lo)),
                       static_cast<double>(hi));
        }
        return Value(std::move(a));
      }
      if (fn == "SHAPE") {
        DL_RETURN_IF_ERROR(need(1));
        // SHAPE of a column is served by the shape encoder — no chunk read.
        if (expr.args[0]->kind == Expr::Kind::kColumn) {
          DL_ASSIGN_OR_RETURN(tsf::Tensor * t,
                              ctx.dataset()->GetTensor(expr.args[0]->text));
          DL_ASSIGN_OR_RETURN(tsf::TensorShape sh, t->ShapeAt(ctx.row()));
          std::vector<double> dims(sh.dims().begin(), sh.dims().end());
          uint64_t rank = dims.size();
          return Value(NdArray({rank}, std::move(dims)));
        }
        DL_ASSIGN_OR_RETURN(NdArray a, AsArray(args[0], ctx, "SHAPE"));
        std::vector<double> dims(a.shape().begin(), a.shape().end());
        uint64_t rank = dims.size();
        return Value(NdArray({rank}, std::move(dims)));
      }
      if (fn == "LEN" || fn == "LENGTH") {
        DL_RETURN_IF_ERROR(need(1));
        if (args[0].is_string()) {
          return Value::Number(static_cast<double>(args[0].str().size()));
        }
        DL_ASSIGN_OR_RETURN(NdArray a, AsArray(args[0], ctx, "LEN"));
        return Value::Number(
            a.ndim() == 0 ? 1.0 : static_cast<double>(a.shape()[0]));
      }
      if (fn == "IOU") {
        DL_RETURN_IF_ERROR(need(2));
        DL_ASSIGN_OR_RETURN(NdArray a, AsArray(args[0], ctx, "IOU"));
        DL_ASSIGN_OR_RETURN(NdArray b, AsArray(args[1], ctx, "IOU"));
        DL_ASSIGN_OR_RETURN(double iou, MeanBestIou(a, b));
        return Value::Number(iou);
      }
      if (fn == "NORMALIZE") {
        DL_RETURN_IF_ERROR(need(2));
        DL_ASSIGN_OR_RETURN(NdArray boxes, AsArray(args[0], ctx, "NORMALIZE"));
        DL_ASSIGN_OR_RETURN(NdArray win, AsArray(args[1], ctx, "NORMALIZE"));
        DL_ASSIGN_OR_RETURN(NdArray out, NormalizeBoxes(boxes, win));
        return Value(std::move(out));
      }
      if (fn == "CONTAINS") {
        DL_RETURN_IF_ERROR(need(2));
        if (!args[0].is_string() || !args[1].is_string()) {
          return Status::InvalidArgument("tql: CONTAINS expects strings");
        }
        return Value::Bool(args[0].str().find(args[1].str()) !=
                           std::string::npos);
      }
      if (fn == "LOWER" || fn == "UPPER") {
        DL_RETURN_IF_ERROR(need(1));
        if (!args[0].is_string()) {
          return Status::InvalidArgument("tql: " + fn + " expects a string");
        }
        return Value(fn == "LOWER" ? ToLower(args[0].str())
                                   : ToUpper(args[0].str()));
      }
      if (fn == "ROW_NUMBER") {
        return Value::Number(static_cast<double>(ctx.row()));
      }
      return Status::NotImplemented("tql: unknown function " + fn);
    }
  }
  return Status::InvalidArgument("tql: bad expression node");
}

// ---------------------------------------------------------------------------
// DatasetView
// ---------------------------------------------------------------------------

DatasetView::DatasetView(std::shared_ptr<tsf::Dataset> dataset,
                         std::vector<uint64_t> indices,
                         std::vector<SelectItem> select, bool selects_all)
    : dataset_(std::move(dataset)),
      indices_(std::move(indices)),
      select_(std::move(select)),
      selects_all_(selects_all) {
  if (selects_all_) {
    columns_ = dataset_->TensorNames();
  } else {
    for (const auto& item : select_) columns_.push_back(item.alias);
  }
}

DatasetView::DatasetView(std::vector<std::string> columns,
                         std::vector<std::vector<Value>> rows)
    : computed_(true), columns_(std::move(columns)), rows_(std::move(rows)) {}

const SelectItem* DatasetView::FindItem(const std::string& column) const {
  for (const auto& item : select_) {
    if (item.alias == column) return &item;
  }
  return nullptr;
}

Result<Value> DatasetView::Cell(size_t view_row, const std::string& column) {
  if (view_row >= size()) {
    return Status::OutOfRange("view: row " + std::to_string(view_row) +
                              " beyond " + std::to_string(size()));
  }
  if (computed_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (columns_[c] == column) return rows_[view_row][c];
    }
    return Status::NotFound("view: no column '" + column + "'");
  }
  EvalContext ctx(dataset_.get(), indices_[view_row]);
  if (selects_all_) {
    return ctx.Column(column);
  }
  const SelectItem* item = FindItem(column);
  if (item == nullptr) {
    return Status::NotFound("view: no column '" + column + "'");
  }
  return Evaluate(*item->expr, ctx);
}

Result<tsf::Sample> DatasetView::CellSample(size_t view_row,
                                            const std::string& column) {
  if (computed_) {
    DL_ASSIGN_OR_RETURN(Value v, Cell(view_row, column));
    if (v.is_string()) return tsf::Sample::FromString(v.str());
    if (v.is_null()) return tsf::Sample::EmptyOf(tsf::DType::kFloat64);
    return v.array().ToSample(tsf::DType::kFloat64);
  }
  if (view_row >= size()) {
    return Status::OutOfRange("view: row beyond end");
  }
  uint64_t row = indices_[view_row];
  // Passthrough fast path: plain column reference keeps the source bytes.
  std::string source_tensor;
  const Expr* expr = nullptr;
  if (selects_all_) {
    source_tensor = column;
  } else {
    const SelectItem* item = FindItem(column);
    if (item == nullptr) {
      return Status::NotFound("view: no column '" + column + "'");
    }
    if (item->expr->kind == Expr::Kind::kColumn) {
      source_tensor = item->expr->text;
    } else {
      expr = item->expr.get();
    }
  }
  if (!source_tensor.empty()) {
    DL_ASSIGN_OR_RETURN(tsf::Tensor * t, dataset_->GetTensor(source_tensor));
    if (row >= t->NumSamples()) {
      return tsf::Sample::EmptyOf(t->meta().dtype);
    }
    return t->Read(row);
  }
  EvalContext ctx(dataset_.get(), row);
  DL_ASSIGN_OR_RETURN(Value v, Evaluate(*expr, ctx));
  if (v.is_string()) return tsf::Sample::FromString(v.str());
  if (v.is_null()) return tsf::Sample::EmptyOf(tsf::DType::kFloat64);
  // Preserve the source dtype when the root of the expression is an
  // index/slice of a plain column; otherwise fall back to float64.
  tsf::DType dtype = tsf::DType::kFloat64;
  const Expr* root = expr;
  while (root->kind == Expr::Kind::kIndex) root = root->lhs.get();
  if (root->kind == Expr::Kind::kColumn && expr->kind == Expr::Kind::kIndex) {
    auto t = dataset_->GetTensor(root->text);
    if (t.ok()) dtype = (*t)->meta().dtype;
  }
  return v.array().ToSample(dtype);
}

bool DatasetView::IsSparseOver(uint64_t dataset_rows) const {
  if (computed_) return false;
  if (indices_.size() != dataset_rows) return true;
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (indices_[i] != i) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// QueryProfile
// ---------------------------------------------------------------------------

std::string QueryProfile::ToTreeString() const {
  std::string out = analyzed ? "EXPLAIN ANALYZE" : "EXPLAIN";
  if (analyzed) {
    out += " (total " + std::to_string(total_us) + " us, parse " +
           std::to_string(parse_us) + " us)";
  }
  out += "\n";
  for (const auto& op : operators) {
    out += "-> " + op.op;
    if (!op.detail.empty()) out += " (" + op.detail + ")";
    if (analyzed) {
      out += " [rows " + std::to_string(op.rows_in) + " -> " +
             std::to_string(op.rows_out) + ", wall " +
             std::to_string(op.wall_us) + " us";
      if (op.bytes_read > 0) {
        out += ", bytes " + std::to_string(op.bytes_read);
      }
      if (op.cache_hits > 0) {
        out += ", cache_hits " + std::to_string(op.cache_hits);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

Json QueryProfile::ToJson() const {
  Json ops = Json::MakeArray();
  for (const auto& op : operators) {
    Json item = Json::MakeObject();
    item.Set("op", op.op);
    item.Set("detail", op.detail);
    item.Set("rows_in", op.rows_in);
    item.Set("rows_out", op.rows_out);
    item.Set("wall_us", op.wall_us);
    item.Set("bytes_read", op.bytes_read);
    item.Set("cache_hits", op.cache_hits);
    ops.Append(std::move(item));
  }
  Json doc = Json::MakeObject();
  doc.Set("query", query);
  doc.Set("analyzed", analyzed);
  doc.Set("parse_us", parse_us);
  doc.Set("total_us", total_us);
  doc.Set("operators", std::move(ops));
  return doc;
}

int64_t QueryProfile::OperatorWallSumUs() const {
  int64_t sum = parse_us;
  for (const auto& op : operators) sum += op.wall_us;
  return sum;
}

// ---------------------------------------------------------------------------
// Query execution
// ---------------------------------------------------------------------------

namespace {

bool IsAggregateCall(const Expr& e) {
  if (e.kind != Expr::Kind::kCall) return false;
  return e.text == "COUNT" || e.text == "SUM" || e.text == "MEAN" ||
         e.text == "MIN" || e.text == "MAX";
}

/// GROUP BY execution: one computed row per group, aggregates reduced over
/// the group's member rows.
Result<DatasetView> ExecuteGroupBy(std::shared_ptr<tsf::Dataset> ds,
                                   const Query& q,
                                   const std::vector<uint64_t>& rows) {
  // Group rows by the (stringified) group key.
  std::map<std::string, std::vector<uint64_t>> groups;
  for (uint64_t row : rows) {
    EvalContext ctx(ds.get(), row);
    std::string key;
    for (const auto& g : q.group_by) {
      DL_ASSIGN_OR_RETURN(Value v, Evaluate(*g, ctx));
      key += v.ToString();
      key += '\x1f';
    }
    groups[key].push_back(row);
  }
  if (q.SelectsAll()) {
    return Status::InvalidArgument(
        "tql: GROUP BY requires an explicit select list");
  }
  std::vector<std::string> columns;
  for (const auto& item : q.select) columns.push_back(item.alias);
  std::vector<std::vector<Value>> out_rows;
  for (const auto& [key, members] : groups) {
    std::vector<Value> out_row;
    for (const auto& item : q.select) {
      const Expr& e = *item.expr;
      if (IsAggregateCall(e)) {
        if (e.text == "COUNT") {
          out_row.push_back(
              Value::Number(static_cast<double>(members.size())));
          continue;
        }
        // Reduce the scalar expression over the group's rows.
        if (e.args.size() != 1) {
          return Status::InvalidArgument("tql: " + e.text +
                                         " expects one argument");
        }
        double acc = 0;
        double mn = HUGE_VAL, mx = -HUGE_VAL;
        for (uint64_t row : members) {
          EvalContext ctx(ds.get(), row);
          DL_ASSIGN_OR_RETURN(Value v, Evaluate(*e.args[0], ctx));
          double d = v.is_array() ? ReduceMean(v.array()) : 0.0;
          acc += d;
          mn = std::min(mn, d);
          mx = std::max(mx, d);
        }
        double result = 0;
        if (e.text == "SUM") result = acc;
        if (e.text == "MEAN") result = members.empty() ? 0 : acc / members.size();
        if (e.text == "MIN") result = members.empty() ? 0 : mn;
        if (e.text == "MAX") result = members.empty() ? 0 : mx;
        out_row.push_back(Value::Number(result));
      } else {
        // Non-aggregate: value on the group's first row.
        EvalContext ctx(ds.get(), members.front());
        DL_ASSIGN_OR_RETURN(Value v, Evaluate(e, ctx));
        out_row.push_back(std::move(v));
      }
    }
    out_rows.push_back(std::move(out_row));
  }
  return DatasetView(std::move(columns), std::move(out_rows));
}

}  // namespace

namespace {

/// JOIN execution (paper §7.3's "does not support operations such as
/// *join*" future-work item): nested-loop inner join producing a computed
/// view. Column references qualify as `alias.tensor`; unqualified names
/// resolve against the FROM dataset.
Result<DatasetView> ExecuteJoin(std::shared_ptr<tsf::Dataset> left,
                                const Query& query,
                                const QueryOptions& options) {
  if (query.joins.size() != 1) {
    return Status::NotImplemented("tql: only a single JOIN is supported");
  }
  if (query.SelectsAll()) {
    return Status::InvalidArgument(
        "tql: JOIN queries require an explicit select list");
  }
  if (!query.group_by.empty()) {
    return Status::NotImplemented("tql: GROUP BY with JOIN");
  }
  const JoinClause& join = query.joins[0];
  auto right_it = options.datasets.find(join.dataset);
  if (right_it == options.datasets.end()) {
    return Status::NotFound("tql: JOIN dataset '" + join.dataset +
                            "' not registered in QueryOptions::datasets");
  }
  std::shared_ptr<tsf::Dataset> right = right_it->second;

  std::vector<std::string> columns;
  for (const auto& item : query.select) columns.push_back(item.alias);

  struct Keyed {
    double key;
    std::vector<Value> cells;
  };
  std::vector<Keyed> rows;
  uint64_t n_left = left->NumRows();
  uint64_t n_right = right->NumRows();
  for (uint64_t i = 0; i < n_left; ++i) {
    for (uint64_t j = 0; j < n_right; ++j) {
      EvalContext ctx(left.get(), i);
      ctx.Bind(query.from_alias, left.get(), i);
      ctx.Bind(join.alias, right.get(), j);
      DL_ASSIGN_OR_RETURN(Value on, Evaluate(*join.on, ctx));
      if (!on.Truthy()) continue;
      if (query.where) {
        DL_ASSIGN_OR_RETURN(Value keep, Evaluate(*query.where, ctx));
        if (!keep.Truthy()) continue;
      }
      Keyed row;
      row.key = 0;
      if (query.order_by) {
        DL_ASSIGN_OR_RETURN(Value k, Evaluate(*query.order_by, ctx));
        row.key = k.is_array() ? ReduceMean(k.array()) : 0.0;
      }
      for (const auto& item : query.select) {
        DL_ASSIGN_OR_RETURN(Value v, Evaluate(*item.expr, ctx));
        row.cells.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  }
  if (query.order_by) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       return query.order_desc ? a.key > b.key
                                               : a.key < b.key;
                     });
  }
  if (query.offset > 0) {
    size_t off = std::min<size_t>(rows.size(),
                                  static_cast<size_t>(query.offset));
    rows.erase(rows.begin(), rows.begin() + off);
  }
  if (query.limit >= 0 && rows.size() > static_cast<size_t>(query.limit)) {
    rows.resize(static_cast<size_t>(query.limit));
  }
  std::vector<std::vector<Value>> out;
  out.reserve(rows.size());
  for (auto& r : rows) out.push_back(std::move(r.cells));
  return DatasetView(std::move(columns), std::move(out));
}

}  // namespace

namespace {

/// Operator details shared by EXPLAIN (describe) and EXPLAIN ANALYZE
/// (measure): the two paths must name operators identically.
std::string GroupByDetail(const Query& query) {
  std::string detail;
  for (const auto& g : query.group_by) {
    if (!detail.empty()) detail += ", ";
    detail += ExprToString(*g);
  }
  return detail;
}

std::string SortDetail(const Query& query) {
  return ExprToString(*query.order_by) +
         (query.order_desc ? " DESC" : " ASC");
}

std::string LimitDetail(const Query& query) {
  std::string detail = query.limit >= 0
                           ? "limit " + std::to_string(query.limit)
                           : std::string("limit none");
  if (query.offset > 0) detail += " offset " + std::to_string(query.offset);
  return detail;
}

std::string ProjectDetail(const Query& query) {
  return query.SelectsAll()
             ? std::string("* (lazy)")
             : std::to_string(query.select.size()) + " column(s) (lazy)";
}

/// Plain EXPLAIN: describe the operator pipeline without touching a row.
/// Mirrors the operator names/order the ANALYZE path produces.
std::vector<OperatorProfile> DescribePlan(const Query& query,
                                          tsf::Dataset* ds) {
  std::vector<OperatorProfile> ops;
  auto add = [&](const char* op, std::string detail) {
    OperatorProfile p;
    p.op = op;
    p.detail = std::move(detail);
    ops.push_back(std::move(p));
  };
  if (!query.joins.empty()) {
    add("join", query.joins[0].dataset + " ON " +
                    ExprToString(*query.joins[0].on));
    add("project", ProjectDetail(query));
    return ops;
  }
  if (!query.version.empty()) add("version", "'" + query.version + "'");
  add("plan", "validate expressions");
  if (query.where) {
    add("filter", ExprToString(*query.where));
  } else {
    add("scan", "full scan of " + std::to_string(ds->NumRows()) + " rows");
  }
  if (!query.group_by.empty()) {
    add("group_by", GroupByDetail(query));
    return ops;
  }
  if (query.order_by) add("sort", SortDetail(query));
  if (query.arrange_by) add("arrange", ExprToString(*query.arrange_by));
  if (query.limit >= 0 || query.offset > 0) add("limit", LimitDetail(query));
  add("project", ProjectDetail(query));
  return ops;
}

/// Renders a profile as a computed single-column view — what EXPLAIN and
/// EXPLAIN ANALYZE return in place of result rows (one line per row).
DatasetView PlanTextView(const QueryProfile& profile) {
  std::vector<std::vector<Value>> out_rows;
  std::string text = profile.ToTreeString();
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    out_rows.push_back({Value(text.substr(start, nl - start))});
    start = nl + 1;
  }
  return DatasetView(std::vector<std::string>{"plan"}, std::move(out_rows));
}

Result<DatasetView> ExecuteQueryImpl(std::shared_ptr<tsf::Dataset> dataset,
                                     const Query& query,
                                     const QueryOptions& options,
                                     QueryProfile* prof) {
  std::shared_ptr<tsf::Dataset> ds = dataset;
  {
    auto named = options.datasets.find(query.from);
    if (named != options.datasets.end()) ds = named->second;
  }
  auto add_op = [&](const char* op, std::string detail, uint64_t rows_in,
                    uint64_t rows_out, int64_t wall_us,
                    EvalContext::IoStats io = {}) {
    if (prof == nullptr) return;
    OperatorProfile p;
    p.op = op;
    p.detail = std::move(detail);
    p.rows_in = rows_in;
    p.rows_out = rows_out;
    p.wall_us = wall_us;
    p.bytes_read = io.bytes_loaded;
    p.cache_hits = io.cache_hits;
    prof->operators.push_back(std::move(p));
  };
  if (!query.joins.empty()) {
    int64_t join_start = NowMicros();
    Result<DatasetView> joined = ExecuteJoin(ds, query, options);
    if (joined.ok()) {
      add_op("join",
             query.joins[0].dataset + " ON " +
                 ExprToString(*query.joins[0].on),
             ds->NumRows(), joined->size(), NowMicros() - join_start);
    }
    return joined;
  }
  if (!query.version.empty()) {
    if (!options.version_resolver) {
      return Status::NotImplemented(
          "tql: VERSION queries require a version resolver");
    }
    int64_t version_start = NowMicros();
    DL_ASSIGN_OR_RETURN(ds, options.version_resolver(query.version));
    add_op("version", "'" + query.version + "'", 0, ds->NumRows(),
           NowMicros() - version_start);
  }
  // Static validation of every expression in the query — the "plan" phase:
  // all schema errors surface here, before any row is touched.
  obs::ScopedSpan plan_span("tql.plan", "tql");
  int64_t plan_start = NowMicros();
  if (!query.SelectsAll()) {
    for (const auto& item : query.select) {
      DL_RETURN_IF_ERROR(ValidateExpr(*item.expr, ds.get()));
    }
  }
  if (query.where) DL_RETURN_IF_ERROR(ValidateExpr(*query.where, ds.get()));
  if (query.order_by) {
    DL_RETURN_IF_ERROR(ValidateExpr(*query.order_by, ds.get()));
  }
  if (query.arrange_by) {
    DL_RETURN_IF_ERROR(ValidateExpr(*query.arrange_by, ds.get()));
  }
  for (const auto& g : query.group_by) {
    DL_RETURN_IF_ERROR(ValidateExpr(*g, ds.get()));
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetHistogram("tql.plan_us")->ObserveSinceMicros(plan_start);
  plan_span.End();
  add_op("plan", "validate expressions", 0, 0, NowMicros() - plan_start);
  uint64_t n = ds->NumRows();
  registry.GetCounter("tql.rows_scanned")->Add(n);

  // Filter.
  std::vector<uint64_t> rows;
  rows.reserve(n);
  EvalContext::IoStats filter_io;
  int64_t filter_start = NowMicros();
  for (uint64_t i = 0; i < n; ++i) {
    if (query.where) {
      EvalContext ctx(ds.get(), i, prof != nullptr ? &filter_io : nullptr);
      DL_ASSIGN_OR_RETURN(Value v, Evaluate(*query.where, ctx));
      if (!v.Truthy()) continue;
    }
    rows.push_back(i);
  }
  add_op(query.where != nullptr ? "filter" : "scan",
         query.where != nullptr
             ? ExprToString(*query.where)
             : "full scan of " + std::to_string(n) + " rows",
         n, rows.size(), NowMicros() - filter_start, filter_io);

  if (!query.group_by.empty()) {
    int64_t group_start = NowMicros();
    uint64_t group_in = rows.size();
    Result<DatasetView> grouped = ExecuteGroupBy(ds, query, rows);
    if (grouped.ok()) {
      add_op("group_by", GroupByDetail(query), group_in, grouped->size(),
             NowMicros() - group_start);
    }
    return grouped;
  }

  // Order.
  if (query.order_by) {
    EvalContext::IoStats sort_io;
    int64_t sort_start = NowMicros();
    std::vector<std::pair<double, uint64_t>> keyed;
    keyed.reserve(rows.size());
    for (uint64_t row : rows) {
      EvalContext ctx(ds.get(), row, prof != nullptr ? &sort_io : nullptr);
      DL_ASSIGN_OR_RETURN(Value v, Evaluate(*query.order_by, ctx));
      double key = v.is_array() ? (v.array().IsScalar()
                                       ? v.array().AsScalar()
                                       : ReduceMean(v.array()))
                                : 0.0;
      keyed.push_back({key, row});
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       return query.order_desc ? a.first > b.first
                                               : a.first < b.first;
                     });
    rows.clear();
    for (const auto& [k, row] : keyed) rows.push_back(row);
    add_op("sort", SortDetail(query), rows.size(), rows.size(),
           NowMicros() - sort_start, sort_io);
  }

  // Arrange (balancing): bucket by key, then round-robin interleave so
  // every key appears evenly through the stream.
  if (query.arrange_by) {
    EvalContext::IoStats arrange_io;
    int64_t arrange_start = NowMicros();
    std::map<std::string, std::vector<uint64_t>> buckets;
    std::vector<std::string> bucket_order;
    for (uint64_t row : rows) {
      EvalContext ctx(ds.get(), row,
                      prof != nullptr ? &arrange_io : nullptr);
      DL_ASSIGN_OR_RETURN(Value v, Evaluate(*query.arrange_by, ctx));
      std::string key = v.ToString();
      if (buckets.find(key) == buckets.end()) bucket_order.push_back(key);
      buckets[key].push_back(row);
    }
    rows.clear();
    size_t remaining = 0;
    for (const auto& [k, b] : buckets) remaining += b.size();
    std::vector<size_t> cursors(bucket_order.size(), 0);
    while (remaining > 0) {
      for (size_t b = 0; b < bucket_order.size(); ++b) {
        auto& bucket = buckets[bucket_order[b]];
        if (cursors[b] < bucket.size()) {
          rows.push_back(bucket[cursors[b]++]);
          --remaining;
        }
      }
    }
    add_op("arrange", ExprToString(*query.arrange_by), rows.size(),
           rows.size(), NowMicros() - arrange_start, arrange_io);
  }

  // Limit / offset.
  if (query.offset > 0 || query.limit >= 0) {
    uint64_t limit_in = rows.size();
    int64_t limit_start = NowMicros();
    if (query.offset > 0) {
      size_t off = std::min<size_t>(rows.size(),
                                    static_cast<size_t>(query.offset));
      rows.erase(rows.begin(), rows.begin() + off);
    }
    if (query.limit >= 0 && rows.size() > static_cast<size_t>(query.limit)) {
      rows.resize(static_cast<size_t>(query.limit));
    }
    add_op("limit", LimitDetail(query), limit_in, rows.size(),
           NowMicros() - limit_start);
  }

  uint64_t out_rows = rows.size();
  DatasetView view(ds, std::move(rows),
                   query.SelectsAll() ? std::vector<SelectItem>{}
                                      : query.select,
                   query.SelectsAll());
  add_op("project", ProjectDetail(query), out_rows, out_rows, 0);
  return view;
}

/// Shared execution wrapper: spans/metrics, optional profiling, EXPLAIN
/// rendering. `query_text`/`parse_us` are known only on the RunQuery path.
Result<DatasetView> ExecuteQueryTimed(std::shared_ptr<tsf::Dataset> dataset,
                                      const Query& query,
                                      const QueryOptions& options,
                                      const std::string& query_text,
                                      int64_t parse_us) {
  // The query adopts its job's trace context: tql.execute and everything
  // beneath it (scan, storage ops) share the context's trace id.
  obs::ContextScope context_scope(options.context);
  obs::ScopedSpan span("tql.execute", "tql");
  auto& registry = obs::MetricsRegistry::Global();
  int64_t start = NowMicros();

  std::shared_ptr<QueryProfile> profile;
  if (options.profile != nullptr || query.explain != ExplainMode::kNone) {
    profile = std::make_shared<QueryProfile>();
    profile->query = query_text;
    profile->analyzed = query.explain != ExplainMode::kPlan;
    profile->parse_us = parse_us;
  }

  Result<DatasetView> view = [&]() -> Result<DatasetView> {
    if (query.explain == ExplainMode::kPlan) {
      std::shared_ptr<tsf::Dataset> ds = dataset;
      auto named = options.datasets.find(query.from);
      if (named != options.datasets.end()) ds = named->second;
      profile->operators = DescribePlan(query, ds.get());
      // Placeholder — the rendered plan view is built below, after
      // total_us is known.
      return DatasetView(std::vector<std::string>{"plan"}, {});
    }
    return ExecuteQueryImpl(std::move(dataset), query, options,
                            profile != nullptr ? profile.get() : nullptr);
  }();

  registry.GetHistogram("tql.execute_us")->ObserveSinceMicros(start);
  if (view.ok()) {
    registry.GetCounter("tql.queries")->Increment();
    registry.GetCounter("tql.rows_selected")->Add(view->size());
  } else {
    registry.GetCounter("tql.errors")->Increment();
    obs::RecordErrorEvent(obs::TraceRecorder::Global(), "tql.execute",
                          view.status().ToString());
  }
  if (view.ok() && profile != nullptr) {
    profile->total_us = NowMicros() - start;
    if (options.profile != nullptr) *options.profile = *profile;
    if (query.explain != ExplainMode::kNone) {
      DatasetView plan_view = PlanTextView(*profile);
      plan_view.AttachProfile(profile);
      return plan_view;
    }
    view->AttachProfile(profile);
  }
  return view;
}

}  // namespace

Result<DatasetView> ExecuteQuery(std::shared_ptr<tsf::Dataset> dataset,
                                 const Query& query,
                                 const QueryOptions& options) {
  return ExecuteQueryTimed(std::move(dataset), query, options, "", 0);
}

Result<DatasetView> RunQuery(std::shared_ptr<tsf::Dataset> dataset,
                             const std::string& query_text,
                             const QueryOptions& options) {
  int64_t parse_start = NowMicros();
  Result<Query> parsed = [&] {
    obs::ContextScope context_scope(options.context);
    obs::ScopedSpan span("tql.parse", "tql");
    obs::ScopedTimerUs timer(
        obs::MetricsRegistry::Global().GetHistogram("tql.parse_us"));
    return ParseQuery(query_text);
  }();
  if (!parsed.ok()) return parsed.status();
  int64_t parse_us = NowMicros() - parse_start;
  return ExecuteQueryTimed(std::move(dataset), *parsed, options, query_text,
                           parse_us);
}

// ---------------------------------------------------------------------------
// Materialization (§4.5)
// ---------------------------------------------------------------------------

Result<std::shared_ptr<tsf::Dataset>> MaterializeView(
    DatasetView& view, storage::StoragePtr target) {
  obs::ScopedSpan span("tql.materialize", "tql");
  auto& registry = obs::MetricsRegistry::Global();
  obs::ScopedTimerUs timer(registry.GetHistogram("tql.materialize_us"));
  registry.GetCounter("tql.rows_materialized")->Add(view.size());
  tsf::Dataset::Options opts;
  opts.description = "materialized view";
  DL_ASSIGN_OR_RETURN(auto out, tsf::Dataset::Create(target, opts));
  // Declare output tensors: passthrough columns copy the source tensor's
  // options; computed columns become generic float64 / text tensors.
  for (const auto& column : view.columns()) {
    tsf::TensorOptions topts;
    bool configured = false;
    if (!view.computed() && view.dataset() != nullptr) {
      // Resolve the source tensor: the column itself for SELECT *, or the
      // root column of a plain/sliced column projection. Slices of a
      // tensor keep its dtype and compression; only whole-column
      // passthroughs keep the htype (a 2-channel crop is not an "image").
      std::string source;
      bool passthrough = false;
      if (view.selects_all()) {
        source = column;
        passthrough = true;
      } else {
        for (const auto& item : view.select_items()) {
          if (item.alias != column) continue;
          const Expr* root = item.expr.get();
          passthrough = root->kind == Expr::Kind::kColumn;
          while (root->kind == Expr::Kind::kIndex) root = root->lhs.get();
          if (root->kind == Expr::Kind::kColumn) source = root->text;
          break;
        }
      }
      if (!source.empty()) {
        auto src = view.dataset()->GetTensor(source);
        if (src.ok()) {
          topts.dtype = std::string(tsf::DTypeName((*src)->meta().dtype));
          topts.sample_compression = std::string(
              compress::CompressionName((*src)->meta().sample_compression));
          topts.chunk_compression = std::string(
              compress::CompressionName((*src)->meta().chunk_compression));
          topts.max_chunk_bytes = (*src)->meta().max_chunk_bytes;
          topts.htype =
              passthrough ? (*src)->meta().htype.ToString() : "generic";
          configured = true;
        }
      }
    }
    if (!configured) {
      topts.htype = "generic";
      topts.dtype = "float64";
    }
    DL_RETURN_IF_ERROR(out->CreateTensor(column, topts).status());
  }
  for (size_t i = 0; i < view.size(); ++i) {
    std::map<std::string, tsf::Sample> row;
    for (const auto& column : view.columns()) {
      DL_ASSIGN_OR_RETURN(tsf::Sample s, view.CellSample(i, column));
      // Computed string cells land as text; adapt dtype mismatches.
      auto tensor = out->GetTensor(column);
      if (tensor.ok() && s.dtype != (*tensor)->meta().dtype &&
          !s.shape.IsEmptySample()) {
        NdArray arr = NdArray::FromSample(s);
        s = arr.ToSample((*tensor)->meta().dtype);
      }
      row[column] = std::move(s);
    }
    DL_RETURN_IF_ERROR(out->Append(row));
  }
  DL_RETURN_IF_ERROR(out->Flush());
  out->LogProvenance("materialized from view of " +
                     std::to_string(view.size()) + " rows");
  return out;
}

}  // namespace dl::tql
