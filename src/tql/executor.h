#ifndef DEEPLAKE_TQL_EXECUTOR_H_
#define DEEPLAKE_TQL_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/context.h"
#include "tql/ast.h"
#include "tsf/dataset.h"
#include "util/json.h"

namespace dl::tql {

/// Per-row evaluation context: resolves column references against one row
/// of a dataset and caches loaded cells (a WHERE and an ORDER BY touching
/// the same tensor fetch it once).
class EvalContext {
 public:
  /// I/O accounting shared across the contexts of one execution stage —
  /// feeds the per-operator bytes_read / cache_hits of EXPLAIN ANALYZE.
  struct IoStats {
    uint64_t loads = 0;         // tensor cell reads that hit storage
    uint64_t bytes_loaded = 0;  // sample bytes those reads returned
    uint64_t cache_hits = 0;    // column refs served from the row cache
  };

  EvalContext(tsf::Dataset* dataset, uint64_t row, IoStats* io = nullptr)
      : dataset_(dataset), row_(row), io_(io) {}

  uint64_t row() const { return row_; }
  tsf::Dataset* dataset() const { return dataset_; }

  /// Binds an additional (alias, dataset, row) for JOIN evaluation:
  /// column references "alias/tensor" resolve against it.
  void Bind(const std::string& alias, tsf::Dataset* dataset, uint64_t row) {
    bindings_[alias] = {dataset, row};
  }

  /// Value of tensor `name` at this row. Text htypes load as strings,
  /// everything else as numeric arrays; empty cells are null. Qualified
  /// names ("alias/tensor") resolve through JOIN bindings first, then
  /// fall back to grouped-tensor paths on the primary dataset.
  Result<Value> Column(const std::string& name);

 private:
  Result<Value> Load(tsf::Dataset* dataset, uint64_t row,
                     const std::string& tensor);

  tsf::Dataset* dataset_;
  uint64_t row_;
  IoStats* io_ = nullptr;
  std::map<std::string, std::pair<tsf::Dataset*, uint64_t>> bindings_;
  std::map<std::string, Value> cache_;
};

/// One operator in an EXPLAIN / EXPLAIN ANALYZE pipeline, in execution
/// order (upstream first). Counters are zero for plain EXPLAIN (nothing
/// ran) and populated by EXPLAIN ANALYZE.
struct OperatorProfile {
  std::string op;      // "plan", "filter", "sort", "limit", ...
  std::string detail;  // rendered expression / parameters
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  int64_t wall_us = 0;
  uint64_t bytes_read = 0;   // sample bytes loaded from tensors
  uint64_t cache_hits = 0;   // column refs served from the row cache
};

/// Full profile of one query: the operator pipeline plus end-to-end
/// timings. Produced by EXPLAIN [ANALYZE] or by QueryOptions::profile;
/// attached to the returned DatasetView either way.
struct QueryProfile {
  std::string query;      // original text when it came through RunQuery
  bool analyzed = false;  // true = operators carry measured counters
  int64_t parse_us = 0;
  int64_t total_us = 0;   // ExecuteQuery wall time
  std::vector<OperatorProfile> operators;

  /// Human-readable pipeline, one "-> op (detail) [counters]" line per
  /// operator under a header line (DESIGN.md §7 shows the format).
  std::string ToTreeString() const;
  /// {"query","analyzed","parse_us","total_us","operators":[{...}]}
  Json ToJson() const;
  /// parse_us + sum of operator wall times — the accounted-for share of
  /// RunQuery's wall clock.
  int64_t OperatorWallSumUs() const;
};

/// Evaluates an expression for one row.
Result<Value> Evaluate(const Expr& expr, EvalContext& ctx);

/// The result of a query: an ordered selection of rows over a dataset plus
/// a projection (paper §4.4 "constructs views of datasets, which can be
/// visualized or directly streamed"). Views are lazy — projected cells are
/// computed on access. GROUP BY queries produce a *computed* view whose
/// rows live in memory.
class DatasetView {
 public:
  /// Row-backed view.
  DatasetView(std::shared_ptr<tsf::Dataset> dataset,
              std::vector<uint64_t> indices, std::vector<SelectItem> select,
              bool selects_all);
  /// Computed (GROUP BY) view.
  DatasetView(std::vector<std::string> columns,
              std::vector<std::vector<Value>> rows);

  bool computed() const { return computed_; }
  uint64_t size() const {
    return computed_ ? rows_.size() : indices_.size();
  }
  /// Output column names in declaration order.
  const std::vector<std::string>& columns() const { return columns_; }

  /// Underlying dataset row index of view row `i` (row-backed views only).
  uint64_t source_row(size_t i) const { return indices_[i]; }
  /// Projection items (empty for SELECT *).
  const std::vector<SelectItem>& select_items() const { return select_; }
  bool selects_all() const { return selects_all_; }
  const std::vector<uint64_t>& indices() const { return indices_; }
  std::shared_ptr<tsf::Dataset> dataset() const { return dataset_; }

  /// Evaluates the cell at (view row, column).
  Result<Value> Cell(size_t view_row, const std::string& column);

  /// Cell as a typed storage sample: passthrough columns keep the source
  /// tensor's bytes and dtype; computed columns convert from the value.
  Result<tsf::Sample> CellSample(size_t view_row, const std::string& column);

  /// True when this view selects a strict subset / reordering of rows —
  /// the "sparse view" whose streaming is less efficient (§4.4/§4.5).
  bool IsSparseOver(uint64_t dataset_rows) const;

  /// Execution profile, when the query was profiled (EXPLAIN [ANALYZE] or
  /// QueryOptions::profile); null otherwise.
  std::shared_ptr<const QueryProfile> profile() const { return profile_; }
  void AttachProfile(std::shared_ptr<const QueryProfile> profile) {
    profile_ = std::move(profile);
  }

  /// Snapshot isolation (DESIGN.md §12): the commit this view's dataset is
  /// pinned at, recorded by DeepLake::QueryAt / At. Empty for views over a
  /// live working dataset. A pinned view never observes concurrently
  /// published commits — its dataset reads through the immutable chain of
  /// the pinned commit.
  const std::string& pinned_commit() const { return pinned_commit_; }
  void PinAtCommit(std::string commit_id) {
    pinned_commit_ = std::move(commit_id);
  }

 private:
  const SelectItem* FindItem(const std::string& column) const;

  bool computed_ = false;
  std::shared_ptr<tsf::Dataset> dataset_;
  std::vector<uint64_t> indices_;
  std::vector<SelectItem> select_;
  bool selects_all_ = true;
  std::vector<std::string> columns_;
  std::vector<std::vector<Value>> rows_;  // computed views
  std::shared_ptr<const QueryProfile> profile_;
  std::string pinned_commit_;
};

struct QueryOptions {
  /// Resolves `FROM ds VERSION '<commit>'` to a dataset pinned at that
  /// version; unset => version queries fail with NotImplemented.
  std::function<Result<std::shared_ptr<tsf::Dataset>>(
      const std::string& version)>
      version_resolver;
  /// Named datasets for FROM/JOIN resolution (paper §7.3 join extension).
  /// The FROM name falls back to the dataset passed to RunQuery when not
  /// registered here; JOIN names must be registered.
  std::map<std::string, std::shared_ptr<tsf::Dataset>> datasets;
  /// When set, execution fills this with a per-operator profile even
  /// without an EXPLAIN prefix — the programmatic way to profile a query
  /// while still getting its result rows.
  QueryProfile* profile = nullptr;
  /// Trace context of the owning job (DESIGN.md §7): installed for the
  /// query's parse + execute, so tql.* spans and the storage spans beneath
  /// them share one trace id and carry the job's tenant label.
  obs::Context context;
};

/// Parses and executes a query against `dataset`.
Result<DatasetView> RunQuery(std::shared_ptr<tsf::Dataset> dataset,
                             const std::string& query_text,
                             const QueryOptions& options = {});

/// Executes an already-parsed query.
Result<DatasetView> ExecuteQuery(std::shared_ptr<tsf::Dataset> dataset,
                                 const Query& query,
                                 const QueryOptions& options = {});

/// Copies a view into a fresh dataset laid out in optimal chunk order —
/// the §4.5 materialization step that turns a sparse view into a dense,
/// streamable dataset.
Result<std::shared_ptr<tsf::Dataset>> MaterializeView(
    DatasetView& view, storage::StoragePtr target);

}  // namespace dl::tql

#endif  // DEEPLAKE_TQL_EXECUTOR_H_
