#ifndef DEEPLAKE_TQL_AST_H_
#define DEEPLAKE_TQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "tql/value.h"

namespace dl::tql {

/// Expression AST. The parsed tree *is* the query's computational graph of
/// tensor operations (paper §4.4); the executor walks it per sample.
struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot };

struct Expr {
  enum class Kind {
    kNumber,     // literal
    kString,     // literal (also used as tensor reference in functions)
    kColumn,     // tensor reference, possibly "group/name"
    kStarAll,    // SELECT *
    kBinary,
    kUnary,
    kCall,       // FUNC(args...)
    kIndex,      // base[slices...]
    kArray,      // [e, e, ...] literal
  };

  Kind kind;
  double number = 0;
  std::string text;  // string literal / column name / function name
  BinaryOp bop = BinaryOp::kAdd;
  UnaryOp uop = UnaryOp::kNeg;
  ExprPtr lhs, rhs;           // binary / unary(base in lhs) / index base
  std::vector<ExprPtr> args;  // call args / array elements

  /// Slice specs for kIndex: each entry is either an expression index or a
  /// start:stop:step with optional expression parts.
  struct SliceExpr {
    bool is_index = false;
    ExprPtr index;                  // for is_index
    ExprPtr start, stop, step;      // any may be null
  };
  std::vector<SliceExpr> slices;

  static ExprPtr Number_(double v) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kNumber;
    e->number = v;
    return e;
  }
  static ExprPtr String_(std::string s) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kString;
    e->text = std::move(s);
    return e;
  }
  static ExprPtr Column(std::string name) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kColumn;
    e->text = std::move(name);
    return e;
  }
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kBinary;
    e->bop = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
  }
  static ExprPtr Unary(UnaryOp op, ExprPtr base) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kUnary;
    e->uop = op;
    e->lhs = std::move(base);
    return e;
  }
};

/// One SELECT item: expression + output name.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // derived from the expression when not given
};

/// JOIN clause (paper §7.3 future work, implemented here):
///   FROM a JOIN b ON a.key = b.key
struct JoinClause {
  std::string dataset;  // name resolved through QueryOptions::datasets
  std::string alias;    // defaults to the dataset name
  ExprPtr on;
};

/// EXPLAIN prefix on a query (DESIGN.md §7). `kPlan` renders the operator
/// pipeline without touching any row; `kAnalyze` executes the query and
/// reports per-operator rows/wall-time/bytes in place of the result rows.
enum class ExplainMode { kNone, kPlan, kAnalyze };

/// A parsed TQL query (paper Fig. 5 grammar).
struct Query {
  ExplainMode explain = ExplainMode::kNone;
  std::vector<SelectItem> select;  // empty or single kStarAll = all tensors
  std::string from;                // dataset identifier (informational)
  std::string from_alias;          // alias for qualified column refs
  std::vector<JoinClause> joins;
  std::string version;             // optional: FROM ds VERSION 'commit'
  ExprPtr where;                   // optional
  std::vector<ExprPtr> group_by;   // optional
  ExprPtr order_by;                // optional
  bool order_desc = false;
  ExprPtr arrange_by;              // optional (Deep Lake extension)
  int64_t limit = -1;              // -1 = none
  int64_t offset = 0;

  bool SelectsAll() const {
    return select.empty() ||
           (select.size() == 1 &&
            select[0].expr->kind == Expr::Kind::kStarAll);
  }
};

/// Renders an expression back to TQL-ish text — used for EXPLAIN operator
/// detail strings ("filter (MEAN(images) > 0.5)"). Round-trip fidelity is
/// not a goal; readability is.
std::string ExprToString(const Expr& expr);

}  // namespace dl::tql

#endif  // DEEPLAKE_TQL_AST_H_
