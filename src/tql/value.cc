#include "tql/value.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace dl::tql {

NdArray NdArray::FromSample(const tsf::Sample& s) {
  if (s.shape.IsEmptySample()) {
    return NdArray(s.shape.dims(), {});
  }
  std::vector<double> data(s.NumElements());
  size_t es = tsf::DTypeSize(s.dtype);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = tsf::Sample::LoadValue(s.data.data() + i * es, s.dtype);
  }
  return NdArray(s.shape.dims(), std::move(data));
}

tsf::Sample NdArray::ToSample(tsf::DType dtype) const {
  size_t es = tsf::DTypeSize(dtype);
  ByteBuffer staging(data_.size() * es);
  for (size_t i = 0; i < data_.size(); ++i) {
    tsf::Sample::StoreValue(staging.data() + i * es, data_[i], dtype);
  }
  return tsf::Sample(dtype, tsf::TensorShape(shape_),
                     Slice(std::move(staging)));
}

std::string NdArray::ToString() const {
  if (IsScalar()) {
    double v = AsScalar();
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
      return std::to_string(static_cast<long long>(v));
    }
    return std::to_string(v);
  }
  std::string out = "array(";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) out += "x";
    out += std::to_string(shape_[i]);
  }
  out += ")";
  return out;
}

bool Value::Truthy() const {
  switch (kind_) {
    case Kind::kNull:
      return false;
    case Kind::kString:
      return !str_.empty();
    case Kind::kArray:
      return ReduceAny(array_);
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kString:
      return str_;
    case Kind::kArray:
      return array_.ToString();
  }
  return "";
}

Result<NdArray> ElementwiseBinary(const NdArray& a, const NdArray& b,
                                  double (*op)(double, double),
                                  const char* op_name) {
  if (a.IsScalar() && !b.IsScalar()) {
    NdArray out({b.shape()}, std::vector<double>(b.size()));
    double av = a.AsScalar();
    for (size_t i = 0; i < b.size(); ++i) out.data()[i] = op(av, b.data()[i]);
    return out;
  }
  if (b.IsScalar()) {
    NdArray out({a.shape()}, std::vector<double>(a.size()));
    double bv = b.AsScalar();
    for (size_t i = 0; i < a.size(); ++i) out.data()[i] = op(a.data()[i], bv);
    return out;
  }
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument(std::string("tql: shape mismatch in '") +
                                   op_name + "': " + a.ToString() + " vs " +
                                   b.ToString());
  }
  NdArray out({a.shape()}, std::vector<double>(a.size()));
  for (size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = op(a.data()[i], b.data()[i]);
  }
  return out;
}

namespace {

int64_t ClampIndex(int64_t idx, uint64_t dim) {
  if (idx < 0) idx += static_cast<int64_t>(dim);
  if (idx < 0) idx = 0;
  if (idx > static_cast<int64_t>(dim)) idx = static_cast<int64_t>(dim);
  return idx;
}

}  // namespace

Result<NdArray> SliceArray(const NdArray& arr,
                           const std::vector<SliceSpec>& specs) {
  if (specs.size() > arr.ndim()) {
    return Status::InvalidArgument("tql: too many indices for array of rank " +
                                   std::to_string(arr.ndim()));
  }
  size_t nd = arr.ndim();
  // Per-dim: start, count, step; and whether the dim is dropped.
  std::vector<int64_t> start(nd, 0), count(nd), step(nd, 1);
  std::vector<bool> dropped(nd, false);
  for (size_t d = 0; d < nd; ++d) {
    uint64_t dim = arr.shape()[d];
    if (d < specs.size()) {
      const SliceSpec& s = specs[d];
      if (s.is_index) {
        int64_t idx = s.index;
        if (idx < 0) idx += static_cast<int64_t>(dim);
        if (idx < 0 || idx >= static_cast<int64_t>(dim)) {
          return Status::OutOfRange("tql: index " + std::to_string(s.index) +
                                    " out of bounds for dim " +
                                    std::to_string(dim));
        }
        start[d] = idx;
        count[d] = 1;
        dropped[d] = true;
        continue;
      }
      int64_t st = s.has_step ? s.step : 1;
      if (st == 0) return Status::InvalidArgument("tql: slice step 0");
      if (st < 0) {
        return Status::NotImplemented("tql: negative slice steps");
      }
      int64_t lo = s.has_start ? ClampIndex(s.start, dim) : 0;
      int64_t hi = s.has_stop ? ClampIndex(s.stop, dim)
                              : static_cast<int64_t>(dim);
      if (hi < lo) hi = lo;
      start[d] = lo;
      step[d] = st;
      count[d] = (hi - lo + st - 1) / st;
    } else {
      count[d] = static_cast<int64_t>(dim);
    }
  }
  // Output shape drops indexed dims.
  std::vector<uint64_t> out_shape;
  uint64_t out_elems = 1;
  for (size_t d = 0; d < nd; ++d) {
    out_elems *= static_cast<uint64_t>(count[d]);
    if (!dropped[d]) out_shape.push_back(static_cast<uint64_t>(count[d]));
  }
  // Strides of the input.
  std::vector<uint64_t> strides(nd, 1);
  for (size_t d = nd; d-- > 1;) strides[d - 1] = strides[d] * arr.shape()[d];

  std::vector<double> out_data;
  out_data.reserve(out_elems);
  std::vector<int64_t> idx(nd, 0);
  if (out_elems > 0) {
    while (true) {
      uint64_t off = 0;
      for (size_t d = 0; d < nd; ++d) {
        off += static_cast<uint64_t>(start[d] + idx[d] * step[d]) * strides[d];
      }
      out_data.push_back(arr.data()[off]);
      ptrdiff_t d = static_cast<ptrdiff_t>(nd) - 1;
      while (d >= 0) {
        if (++idx[d] < count[d]) break;
        idx[d] = 0;
        --d;
      }
      if (d < 0) break;
    }
  }
  return NdArray(std::move(out_shape), std::move(out_data));
}

double ReduceSum(const NdArray& a) {
  double s = 0;
  for (double v : a.data()) s += v;
  return s;
}

double ReduceMin(const NdArray& a) {
  double m = HUGE_VAL;
  for (double v : a.data()) m = std::min(m, v);
  return a.data().empty() ? 0.0 : m;
}

double ReduceMax(const NdArray& a) {
  double m = -HUGE_VAL;
  for (double v : a.data()) m = std::max(m, v);
  return a.data().empty() ? 0.0 : m;
}

double ReduceMean(const NdArray& a) {
  return a.data().empty() ? 0.0 : ReduceSum(a) / a.data().size();
}

double ReduceStd(const NdArray& a) {
  if (a.data().size() < 2) return 0.0;
  double mean = ReduceMean(a);
  double ss = 0;
  for (double v : a.data()) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / a.data().size());
}

bool ReduceAny(const NdArray& a) {
  for (double v : a.data()) {
    if (v != 0.0) return true;
  }
  return false;
}

bool ReduceAll(const NdArray& a) {
  for (double v : a.data()) {
    if (v == 0.0) return false;
  }
  return true;
}

double ReduceL2(const NdArray& a) {
  double ss = 0;
  for (double v : a.data()) ss += v * v;
  return std::sqrt(ss);
}

namespace {

double BoxIou(const double* a, const double* b) {
  // (x, y, w, h) boxes.
  double ax0 = a[0], ay0 = a[1], ax1 = a[0] + a[2], ay1 = a[1] + a[3];
  double bx0 = b[0], by0 = b[1], bx1 = b[0] + b[2], by1 = b[1] + b[3];
  double ix = std::max(0.0, std::min(ax1, bx1) - std::max(ax0, bx0));
  double iy = std::max(0.0, std::min(ay1, by1) - std::max(ay0, by0));
  double inter = ix * iy;
  double uni = a[2] * a[3] + b[2] * b[3] - inter;
  return uni > 0 ? inter / uni : 0.0;
}

Status CheckBoxes(const NdArray& a, const char* what) {
  if (a.ndim() == 1 && a.shape()[0] == 4) return Status::OK();
  if (a.ndim() == 2 && a.shape()[1] == 4) return Status::OK();
  return Status::InvalidArgument(std::string("tql: ") + what +
                                 " must be (n,4) or (4,) boxes, got " +
                                 a.ToString());
}

size_t NumBoxes(const NdArray& a) {
  return a.ndim() == 1 ? 1 : a.shape()[0];
}

}  // namespace

Result<double> MeanBestIou(const NdArray& a, const NdArray& b) {
  DL_RETURN_IF_ERROR(CheckBoxes(a, "IOU lhs"));
  DL_RETURN_IF_ERROR(CheckBoxes(b, "IOU rhs"));
  size_t na = NumBoxes(a), nb = NumBoxes(b);
  if (na == 0 || nb == 0) return 0.0;
  double total = 0;
  for (size_t i = 0; i < na; ++i) {
    double best = 0;
    for (size_t j = 0; j < nb; ++j) {
      best = std::max(best, BoxIou(a.data().data() + i * 4,
                                   b.data().data() + j * 4));
    }
    total += best;
  }
  return total / static_cast<double>(na);
}

Result<NdArray> NormalizeBoxes(const NdArray& boxes, const NdArray& window) {
  DL_RETURN_IF_ERROR(CheckBoxes(boxes, "NORMALIZE boxes"));
  if (window.size() != 4) {
    return Status::InvalidArgument(
        "tql: NORMALIZE window must have 4 values [x, y, w, h]");
  }
  double wx = window.data()[0], wy = window.data()[1];
  double ww = window.data()[2], wh = window.data()[3];
  if (ww == 0 || wh == 0) {
    return Status::InvalidArgument("tql: NORMALIZE window has zero extent");
  }
  NdArray out({boxes.shape()}, std::vector<double>(boxes.size()));
  size_t n = NumBoxes(boxes);
  for (size_t i = 0; i < n; ++i) {
    const double* in = boxes.data().data() + i * 4;
    double* o = out.data().data() + i * 4;
    o[0] = (in[0] - wx) / ww;
    o[1] = (in[1] - wy) / wh;
    o[2] = in[2] / ww;
    o[3] = in[3] / wh;
  }
  return out;
}

}  // namespace dl::tql
