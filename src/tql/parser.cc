#include "tql/parser.h"

#include <cstdint>

#include "tql/lexer.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace dl::tql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query q;
    if (AcceptKeyword("EXPLAIN")) {
      q.explain = ExplainMode::kPlan;
      if (AcceptKeyword("ANALYZE")) q.explain = ExplainMode::kAnalyze;
    }
    DL_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    DL_RETURN_IF_ERROR(ParseSelectList(&q));
    if (AcceptKeyword("FROM")) {
      DL_ASSIGN_OR_RETURN(q.from, ParseDottedName());
      q.from_alias = q.from;
      if (AcceptKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected alias after AS");
        }
        q.from_alias = Peek().text;
        Advance();
      }
      while (AcceptKeyword("JOIN")) {
        JoinClause join;
        DL_ASSIGN_OR_RETURN(join.dataset, ParseDottedName());
        join.alias = join.dataset;
        if (AcceptKeyword("AS")) {
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected alias after AS");
          }
          join.alias = Peek().text;
          Advance();
        }
        DL_RETURN_IF_ERROR(ExpectKeyword("ON"));
        DL_ASSIGN_OR_RETURN(join.on, ParseExpr());
        q.joins.push_back(std::move(join));
      }
      if (AcceptKeyword("VERSION")) {
        if (Peek().kind != TokenKind::kString) {
          return Err("expected commit string after VERSION");
        }
        q.version = Peek().text;
        Advance();
      }
    }
    if (AcceptKeyword("WHERE")) {
      DL_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      DL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        q.group_by.push_back(std::move(e));
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("ORDER")) {
      DL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DL_ASSIGN_OR_RETURN(q.order_by, ParseExpr());
      if (AcceptKeyword("DESC")) {
        q.order_desc = true;
      } else {
        AcceptKeyword("ASC");
      }
    }
    if (AcceptKeyword("ARRANGE")) {
      DL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DL_ASSIGN_OR_RETURN(q.arrange_by, ParseExpr());
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kNumber) {
        return Err("expected number after LIMIT");
      }
      q.limit = static_cast<int64_t>(Peek().number);
      Advance();
      if (AcceptKeyword("OFFSET")) {
        if (Peek().kind != TokenKind::kNumber) {
          return Err("expected number after OFFSET");
        }
        q.offset = static_cast<int64_t>(Peek().number);
        Advance();
      }
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return q;
  }

  Result<ExprPtr> ParseStandaloneExpr() {
    DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  // ---- token helpers ----

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    return TokenIsKeyword(Peek(ahead), kw);
  }
  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(
          std::string("tql: expected ") + kw + " at offset " +
          std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("tql: " + msg + " at offset " +
                                   std::to_string(Peek().offset));
  }

  static bool IsClauseKeyword(const std::string& upper) {
    return upper == "FROM" || upper == "WHERE" || upper == "GROUP" ||
           upper == "ORDER" || upper == "ARRANGE" || upper == "LIMIT" ||
           upper == "OFFSET" || upper == "AS" || upper == "ASC" ||
           upper == "DESC" || upper == "BY" || upper == "VERSION" ||
           upper == "JOIN" || upper == "ON" || upper == "EXPLAIN" ||
           upper == "ANALYZE";
  }

  // ---- grammar ----

  Status ParseSelectList(Query* q) {
    if (Accept(TokenKind::kStar)) {
      auto star = std::make_shared<Expr>();
      star->kind = Expr::Kind::kStarAll;
      q->select.push_back({star, "*"});
      return Status::OK();
    }
    do {
      SelectItem item;
      size_t expr_start = Peek().offset;
      DL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected alias after AS").WithContext("select");
        }
        item.alias = Peek().text;
        Advance();
      } else if (item.expr->kind == Expr::Kind::kColumn) {
        item.alias = item.expr->text;
      } else {
        item.alias = "col" + std::to_string(q->select.size()) + "_" +
                     std::to_string(expr_start);
      }
      q->select.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));
    return Status::OK();
  }

  /// Dotted identifier -> "a/b/c" (grouped tensor path).
  Result<std::string> ParseDottedName() {
    if (Peek().kind != TokenKind::kIdent) {
      return Err("expected identifier");
    }
    std::string name = Peek().text;
    Advance();
    while (Peek().kind == TokenKind::kDot &&
           Peek(1).kind == TokenKind::kIdent) {
      Advance();
      name += "/";
      name += Peek().text;
      Advance();
    }
    return name;
  }

  // Precedence climbing: OR < AND < NOT < cmp < add < mul < unary < postfix.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      DL_ASSIGN_OR_RETURN(ExprPtr base, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(base));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      Advance();
      DL_ASSIGN_OR_RETURN(ExprPtr base, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(base));
    }
    if (Peek().kind == TokenKind::kPlus) {
      Advance();
      return ParseUnary();
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    DL_ASSIGN_OR_RETURN(ExprPtr base, ParsePrimary());
    while (Accept(TokenKind::kLBracket)) {
      auto idx = std::make_shared<Expr>();
      idx->kind = Expr::Kind::kIndex;
      idx->lhs = std::move(base);
      do {
        DL_ASSIGN_OR_RETURN(Expr::SliceExpr spec, ParseSliceSpec());
        idx->slices.push_back(std::move(spec));
      } while (Accept(TokenKind::kComma));
      if (!Accept(TokenKind::kRBracket)) {
        return Err("expected ']'");
      }
      base = std::move(idx);
    }
    return base;
  }

  Result<Expr::SliceExpr> ParseSliceSpec() {
    Expr::SliceExpr spec;
    // Forms: expr | expr? ':' expr? (':' expr?)?
    bool have_start = false;
    ExprPtr first;
    if (Peek().kind != TokenKind::kColon) {
      DL_ASSIGN_OR_RETURN(first, ParseExpr());
      have_start = true;
    }
    if (!Accept(TokenKind::kColon)) {
      if (!have_start) return Err("expected slice or index");
      spec.is_index = true;
      spec.index = std::move(first);
      return spec;
    }
    spec.start = std::move(first);
    if (Peek().kind != TokenKind::kColon &&
        Peek().kind != TokenKind::kComma &&
        Peek().kind != TokenKind::kRBracket) {
      DL_ASSIGN_OR_RETURN(spec.stop, ParseExpr());
    }
    if (Accept(TokenKind::kColon)) {
      if (Peek().kind != TokenKind::kComma &&
          Peek().kind != TokenKind::kRBracket) {
        DL_ASSIGN_OR_RETURN(spec.step, ParseExpr());
      }
    }
    return spec;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        double v = t.number;
        Advance();
        return Expr::Number_(v);
      }
      case TokenKind::kString: {
        std::string s = t.text;
        Advance();
        return Expr::String_(std::move(s));
      }
      case TokenKind::kLParen: {
        Advance();
        DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        if (!Accept(TokenKind::kRParen)) return Err("expected ')'");
        return e;
      }
      case TokenKind::kLBracket: {
        // Array literal [e, e, ...].
        Advance();
        auto arr = std::make_shared<Expr>();
        arr->kind = Expr::Kind::kArray;
        if (!Accept(TokenKind::kRBracket)) {
          do {
            DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            arr->args.push_back(std::move(e));
          } while (Accept(TokenKind::kComma));
          if (!Accept(TokenKind::kRBracket)) return Err("expected ']'");
        }
        return arr;
      }
      case TokenKind::kIdent: {
        std::string upper = ToUpper(t.text);
        if (IsClauseKeyword(upper)) {
          return Err("unexpected keyword '" + t.text + "'");
        }
        if (upper == "TRUE") {
          Advance();
          return Expr::Number_(1);
        }
        if (upper == "FALSE") {
          Advance();
          return Expr::Number_(0);
        }
        if (upper == "NULL") {
          Advance();
          auto e = std::make_shared<Expr>();
          e->kind = Expr::Kind::kString;  // evaluator maps "" via kNull? no:
          e->kind = Expr::Kind::kNumber;
          e->number = 0;
          return e;
        }
        // Function call or column reference.
        if (Peek(1).kind == TokenKind::kLParen) {
          auto call = std::make_shared<Expr>();
          call->kind = Expr::Kind::kCall;
          call->text = ToUpper(t.text);
          Advance();  // name
          Advance();  // (
          if (!Accept(TokenKind::kRParen)) {
            do {
              DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
              call->args.push_back(std::move(e));
            } while (Accept(TokenKind::kComma));
            if (!Accept(TokenKind::kRParen)) return Err("expected ')'");
          }
          return std::static_pointer_cast<Expr>(call);
        }
        DL_ASSIGN_OR_RETURN(std::string name, ParseDottedName());
        return Expr::Column(std::move(name));
      }
      default:
        return Err("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  DL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseQuery();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  DL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseStandaloneExpr();
}

namespace {

const char* BinaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

std::string NumberToString(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  return std::to_string(v);
}

void AppendExpr(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      *out += NumberToString(e.number);
      return;
    case Expr::Kind::kString:
      *out += "'";
      *out += e.text;
      *out += "'";
      return;
    case Expr::Kind::kColumn:
      *out += e.text;
      return;
    case Expr::Kind::kStarAll:
      *out += "*";
      return;
    case Expr::Kind::kBinary:
      *out += "(";
      AppendExpr(*e.lhs, out);
      *out += " ";
      *out += BinaryOpText(e.bop);
      *out += " ";
      AppendExpr(*e.rhs, out);
      *out += ")";
      return;
    case Expr::Kind::kUnary:
      *out += e.uop == UnaryOp::kNot ? "NOT " : "-";
      AppendExpr(*e.lhs, out);
      return;
    case Expr::Kind::kCall: {
      *out += e.text;
      *out += "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) *out += ", ";
        AppendExpr(*e.args[i], out);
      }
      *out += ")";
      return;
    }
    case Expr::Kind::kArray: {
      *out += "[";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) *out += ", ";
        AppendExpr(*e.args[i], out);
      }
      *out += "]";
      return;
    }
    case Expr::Kind::kIndex: {
      AppendExpr(*e.lhs, out);
      *out += "[";
      for (size_t i = 0; i < e.slices.size(); ++i) {
        if (i > 0) *out += ", ";
        const Expr::SliceExpr& s = e.slices[i];
        if (s.is_index) {
          AppendExpr(*s.index, out);
          continue;
        }
        if (s.start) AppendExpr(*s.start, out);
        *out += ":";
        if (s.stop) AppendExpr(*s.stop, out);
        if (s.step) {
          *out += ":";
          AppendExpr(*s.step, out);
        }
      }
      *out += "]";
      return;
    }
  }
  *out += "?";
}

}  // namespace

std::string ExprToString(const Expr& expr) {
  std::string out;
  AppendExpr(expr, &out);
  return out;
}

}  // namespace dl::tql
