#ifndef DEEPLAKE_TQL_VALUE_H_
#define DEEPLAKE_TQL_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tsf/sample.h"
#include "util/result.h"

namespace dl::tql {

/// N-dimensional numeric array — the runtime value of TQL expressions
/// (paper §4.4: "TQL extends SQL with numeric computations on top of
/// multi-dimensional columns"). Elements are held as doubles during
/// evaluation; `ToSample` converts back to a storage dtype.
class NdArray {
 public:
  NdArray() = default;
  NdArray(std::vector<uint64_t> shape, std::vector<double> data)
      : shape_(std::move(shape)), data_(std::move(data)) {}

  static NdArray Scalar(double v) { return NdArray({}, {v}); }
  static NdArray FromSample(const tsf::Sample& s);

  const std::vector<uint64_t>& shape() const { return shape_; }
  size_t ndim() const { return shape_.size(); }
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }
  size_t size() const { return data_.size(); }

  bool IsScalar() const { return shape_.empty() && data_.size() == 1; }
  double AsScalar() const { return data_.empty() ? 0.0 : data_[0]; }
  bool AsBool() const { return AsScalar() != 0.0; }

  /// Converts back to a typed storage sample.
  tsf::Sample ToSample(tsf::DType dtype) const;

  std::string ToString() const;

 private:
  std::vector<uint64_t> shape_;
  std::vector<double> data_;
};

/// A TQL runtime value: numeric array, UTF-8 string, or null (missing
/// cell / empty sample).
class Value {
 public:
  enum class Kind { kNull, kArray, kString };

  Value() : kind_(Kind::kNull) {}
  Value(NdArray arr)  // NOLINT(runtime/explicit)
      : kind_(Kind::kArray), array_(std::move(arr)) {}
  Value(std::string s)  // NOLINT(runtime/explicit)
      : kind_(Kind::kString), str_(std::move(s)) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(NdArray::Scalar(b ? 1.0 : 0.0)); }
  static Value Number(double d) { return Value(NdArray::Scalar(d)); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }

  const NdArray& array() const { return array_; }
  NdArray& array() { return array_; }
  const std::string& str() const { return str_; }

  /// Truthiness: null -> false; string -> non-empty; array -> any nonzero.
  bool Truthy() const;

  std::string ToString() const;

 private:
  Kind kind_;
  NdArray array_;
  std::string str_;
};

// ---- Kernels -------------------------------------------------------------

/// Elementwise binary op with scalar<->array broadcasting; shapes must
/// otherwise match exactly.
Result<NdArray> ElementwiseBinary(const NdArray& a, const NdArray& b,
                                  double (*op)(double, double),
                                  const char* op_name);

/// NumPy-style per-dimension slice spec. Absent fields keep defaults;
/// negative indices count from the end.
struct SliceSpec {
  bool is_index = false;   // single index: drops the dimension
  int64_t index = 0;
  bool has_start = false, has_stop = false, has_step = false;
  int64_t start = 0, stop = 0, step = 1;
};

/// arr[spec0, spec1, ...]; trailing unspecified dims pass through whole.
Result<NdArray> SliceArray(const NdArray& arr,
                           const std::vector<SliceSpec>& specs);

/// Reductions over all elements.
double ReduceSum(const NdArray& a);
double ReduceMin(const NdArray& a);
double ReduceMax(const NdArray& a);
double ReduceMean(const NdArray& a);
double ReduceStd(const NdArray& a);
bool ReduceAny(const NdArray& a);
bool ReduceAll(const NdArray& a);
double ReduceL2(const NdArray& a);

/// Mean best-intersection-over-union between two (n,4) box arrays in
/// (x, y, w, h) layout: for every box in `a` take the best IoU against
/// `b`, then average (the paper's Fig. 5 IOU(boxes, "training/boxes")).
Result<double> MeanBestIou(const NdArray& a, const NdArray& b);

/// Normalizes an (n,4) box array against a crop window [x, y, w, h]:
/// out = ((bx - x)/w, (by - y)/h, bw/w, bh/h) — the Fig. 5 NORMALIZE.
Result<NdArray> NormalizeBoxes(const NdArray& boxes, const NdArray& window);

}  // namespace dl::tql

#endif  // DEEPLAKE_TQL_VALUE_H_
