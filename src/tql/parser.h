#ifndef DEEPLAKE_TQL_PARSER_H_
#define DEEPLAKE_TQL_PARSER_H_

#include <string>

#include "tql/ast.h"
#include "util/result.h"

namespace dl::tql {

/// Parses a full TQL query:
///
///   SELECT item [AS alias] (, item)* | *
///   [FROM ident [VERSION 'commit']]
///   [WHERE expr]
///   [GROUP BY expr (, expr)*]
///   [ORDER BY expr [ASC|DESC]]
///   [ARRANGE BY expr]
///   [LIMIT n [OFFSET m]]
///
/// Expressions support SQL operators plus NumPy-style indexing/slicing
/// (`images[100:500, 100:500, 0:2]`), array literals (`[100, 100, 400,
/// 400]`), function calls, and dotted tensor paths (`training.boxes` maps
/// to the grouped tensor "training/boxes").
Result<Query> ParseQuery(const std::string& text);

/// Parses a standalone expression (used by tests and the dataloader's
/// filter hook).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace dl::tql

#endif  // DEEPLAKE_TQL_PARSER_H_
