#include "tql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace dl::tql {

Result<std::vector<Token>> Lex(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = query.size();
  auto push = [&](TokenKind kind, size_t at) {
    Token t;
    t.kind = kind;
    t.offset = at;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && query[i + 1] == '-') {
      // SQL line comment.
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    size_t at = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                       query[i] == '_')) {
        ++i;
      }
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = query.substr(start, i - start);
      t.offset = at;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                       query[i] == '.' || query[i] == 'e' || query[i] == 'E' ||
                       ((query[i] == '+' || query[i] == '-') && i > start &&
                        (query[i - 1] == 'e' || query[i - 1] == 'E')))) {
        ++i;
      }
      std::string num = query.substr(start, i - start);
      char* end = nullptr;
      double v = std::strtod(num.c_str(), &end);
      if (end != num.c_str() + num.size()) {
        return Status::InvalidArgument("tql: malformed number '" + num +
                                       "' at offset " + std::to_string(at));
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.number = v;
      t.offset = at;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (query[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        if (query[i] == '\\' && i + 1 < n) {
          ++i;
          text += query[i++];
        } else {
          text += query[i++];
        }
      }
      if (!closed) {
        return Status::InvalidArgument("tql: unterminated string at offset " +
                                       std::to_string(at));
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.offset = at;
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, at);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, at);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, at);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, at);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, at);
        ++i;
        break;
      case ':':
        push(TokenKind::kColon, at);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, at);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, at);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, at);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, at);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, at);
        ++i;
        break;
      case '%':
        push(TokenKind::kPercent, at);
        ++i;
        break;
      case '=':
        ++i;
        if (i < n && query[i] == '=') ++i;
        push(TokenKind::kEq, at);
        break;
      case '!':
        ++i;
        if (i < n && query[i] == '=') {
          ++i;
          push(TokenKind::kNe, at);
        } else {
          return Status::InvalidArgument("tql: stray '!' at offset " +
                                         std::to_string(at));
        }
        break;
      case '<':
        ++i;
        if (i < n && query[i] == '=') {
          ++i;
          push(TokenKind::kLe, at);
        } else if (i < n && query[i] == '>') {
          ++i;
          push(TokenKind::kNe, at);
        } else {
          push(TokenKind::kLt, at);
        }
        break;
      case '>':
        ++i;
        if (i < n && query[i] == '=') {
          ++i;
          push(TokenKind::kGe, at);
        } else {
          push(TokenKind::kGt, at);
        }
        break;
      default:
        return Status::InvalidArgument(
            std::string("tql: unexpected character '") + c + "' at offset " +
            std::to_string(at));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

bool TokenIsKeyword(const Token& token, const char* keyword) {
  if (token.kind != TokenKind::kIdent) return false;
  const std::string& text = token.text;
  size_t i = 0;
  for (; i < text.size(); ++i) {
    if (keyword[i] == '\0') return false;
    if (std::toupper(static_cast<unsigned char>(text[i])) != keyword[i]) {
      return false;
    }
  }
  return keyword[i] == '\0';
}

}  // namespace dl::tql
