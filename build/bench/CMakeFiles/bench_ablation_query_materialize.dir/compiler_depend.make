# Empty compiler generated dependencies file for bench_ablation_query_materialize.
# This may be replaced when dependencies are built.
