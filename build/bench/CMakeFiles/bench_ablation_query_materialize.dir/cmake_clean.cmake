file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_query_materialize.dir/bench_ablation_query_materialize.cc.o"
  "CMakeFiles/bench_ablation_query_materialize.dir/bench_ablation_query_materialize.cc.o.d"
  "bench_ablation_query_materialize"
  "bench_ablation_query_materialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_query_materialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
