# Empty compiler generated dependencies file for bench_ablation_rechunk.
# This may be replaced when dependencies are built.
