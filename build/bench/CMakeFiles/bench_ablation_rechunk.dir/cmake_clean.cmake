file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rechunk.dir/bench_ablation_rechunk.cc.o"
  "CMakeFiles/bench_ablation_rechunk.dir/bench_ablation_rechunk.cc.o.d"
  "bench_ablation_rechunk"
  "bench_ablation_rechunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rechunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
