# Empty compiler generated dependencies file for bench_fig7_local_loader.
# This may be replaced when dependencies are built.
