file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_local_loader.dir/bench_fig7_local_loader.cc.o"
  "CMakeFiles/bench_fig7_local_loader.dir/bench_fig7_local_loader.cc.o.d"
  "bench_fig7_local_loader"
  "bench_fig7_local_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_local_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
