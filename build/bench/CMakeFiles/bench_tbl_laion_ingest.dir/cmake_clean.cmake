file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl_laion_ingest.dir/bench_tbl_laion_ingest.cc.o"
  "CMakeFiles/bench_tbl_laion_ingest.dir/bench_tbl_laion_ingest.cc.o.d"
  "bench_tbl_laion_ingest"
  "bench_tbl_laion_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl_laion_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
