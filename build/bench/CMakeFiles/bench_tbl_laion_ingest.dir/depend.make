# Empty dependencies file for bench_tbl_laion_ingest.
# This may be replaced when dependencies are built.
