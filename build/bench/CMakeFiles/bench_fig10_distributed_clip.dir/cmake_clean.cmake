file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_distributed_clip.dir/bench_fig10_distributed_clip.cc.o"
  "CMakeFiles/bench_fig10_distributed_clip.dir/bench_fig10_distributed_clip.cc.o.d"
  "bench_fig10_distributed_clip"
  "bench_fig10_distributed_clip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_distributed_clip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
