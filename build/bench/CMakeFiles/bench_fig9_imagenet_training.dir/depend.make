# Empty dependencies file for bench_fig9_imagenet_training.
# This may be replaced when dependencies are built.
