file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_remote_streaming.dir/bench_fig8_remote_streaming.cc.o"
  "CMakeFiles/bench_fig8_remote_streaming.dir/bench_fig8_remote_streaming.cc.o.d"
  "bench_fig8_remote_streaming"
  "bench_fig8_remote_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_remote_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
