# Empty dependencies file for bench_fig8_remote_streaming.
# This may be replaced when dependencies are built.
