
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fault_recovery.cc" "bench/CMakeFiles/bench_fault_recovery.dir/bench_fault_recovery.cc.o" "gcc" "bench/CMakeFiles/bench_fault_recovery.dir/bench_fault_recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_ingest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_tql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_version.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_tsf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
