# Empty compiler generated dependencies file for bench_tbl_chunk_encoder_scale.
# This may be replaced when dependencies are built.
