file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl_chunk_encoder_scale.dir/bench_tbl_chunk_encoder_scale.cc.o"
  "CMakeFiles/bench_tbl_chunk_encoder_scale.dir/bench_tbl_chunk_encoder_scale.cc.o.d"
  "bench_tbl_chunk_encoder_scale"
  "bench_tbl_chunk_encoder_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl_chunk_encoder_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
