file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ingestion.dir/bench_fig6_ingestion.cc.o"
  "CMakeFiles/bench_fig6_ingestion.dir/bench_fig6_ingestion.cc.o.d"
  "bench_fig6_ingestion"
  "bench_fig6_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
