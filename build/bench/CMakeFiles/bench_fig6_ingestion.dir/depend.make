# Empty dependencies file for bench_fig6_ingestion.
# This may be replaced when dependencies are built.
