# Empty compiler generated dependencies file for dl_tsf.
# This may be replaced when dependencies are built.
