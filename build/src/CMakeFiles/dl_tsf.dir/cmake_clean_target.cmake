file(REMOVE_RECURSE
  "libdl_tsf.a"
)
