file(REMOVE_RECURSE
  "CMakeFiles/dl_tsf.dir/tsf/chunk.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/chunk.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/chunk_encoder.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/chunk_encoder.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/dataset.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/dataset.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/dtype.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/dtype.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/htype.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/htype.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/shape.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/shape.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/shape_encoder.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/shape_encoder.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/tensor.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/tensor.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/tensor_meta.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/tensor_meta.cc.o.d"
  "CMakeFiles/dl_tsf.dir/tsf/tile_encoder.cc.o"
  "CMakeFiles/dl_tsf.dir/tsf/tile_encoder.cc.o.d"
  "libdl_tsf.a"
  "libdl_tsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_tsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
