
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsf/chunk.cc" "src/CMakeFiles/dl_tsf.dir/tsf/chunk.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/chunk.cc.o.d"
  "/root/repo/src/tsf/chunk_encoder.cc" "src/CMakeFiles/dl_tsf.dir/tsf/chunk_encoder.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/chunk_encoder.cc.o.d"
  "/root/repo/src/tsf/dataset.cc" "src/CMakeFiles/dl_tsf.dir/tsf/dataset.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/dataset.cc.o.d"
  "/root/repo/src/tsf/dtype.cc" "src/CMakeFiles/dl_tsf.dir/tsf/dtype.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/dtype.cc.o.d"
  "/root/repo/src/tsf/htype.cc" "src/CMakeFiles/dl_tsf.dir/tsf/htype.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/htype.cc.o.d"
  "/root/repo/src/tsf/shape.cc" "src/CMakeFiles/dl_tsf.dir/tsf/shape.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/shape.cc.o.d"
  "/root/repo/src/tsf/shape_encoder.cc" "src/CMakeFiles/dl_tsf.dir/tsf/shape_encoder.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/shape_encoder.cc.o.d"
  "/root/repo/src/tsf/tensor.cc" "src/CMakeFiles/dl_tsf.dir/tsf/tensor.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/tensor.cc.o.d"
  "/root/repo/src/tsf/tensor_meta.cc" "src/CMakeFiles/dl_tsf.dir/tsf/tensor_meta.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/tensor_meta.cc.o.d"
  "/root/repo/src/tsf/tile_encoder.cc" "src/CMakeFiles/dl_tsf.dir/tsf/tile_encoder.cc.o" "gcc" "src/CMakeFiles/dl_tsf.dir/tsf/tile_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
