file(REMOVE_RECURSE
  "CMakeFiles/dl_stream.dir/stream/dataloader.cc.o"
  "CMakeFiles/dl_stream.dir/stream/dataloader.cc.o.d"
  "libdl_stream.a"
  "libdl_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
