# Empty dependencies file for dl_stream.
# This may be replaced when dependencies are built.
