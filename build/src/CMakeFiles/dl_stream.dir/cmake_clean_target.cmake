file(REMOVE_RECURSE
  "libdl_stream.a"
)
