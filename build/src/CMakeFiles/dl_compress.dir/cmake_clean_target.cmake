file(REMOVE_RECURSE
  "libdl_compress.a"
)
