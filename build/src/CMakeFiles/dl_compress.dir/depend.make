# Empty dependencies file for dl_compress.
# This may be replaced when dependencies are built.
