file(REMOVE_RECURSE
  "CMakeFiles/dl_compress.dir/compress/codec.cc.o"
  "CMakeFiles/dl_compress.dir/compress/codec.cc.o.d"
  "CMakeFiles/dl_compress.dir/compress/image_codec.cc.o"
  "CMakeFiles/dl_compress.dir/compress/image_codec.cc.o.d"
  "CMakeFiles/dl_compress.dir/compress/lz77.cc.o"
  "CMakeFiles/dl_compress.dir/compress/lz77.cc.o.d"
  "CMakeFiles/dl_compress.dir/compress/simple_codecs.cc.o"
  "CMakeFiles/dl_compress.dir/compress/simple_codecs.cc.o.d"
  "libdl_compress.a"
  "libdl_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
