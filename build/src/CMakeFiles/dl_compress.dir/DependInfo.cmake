
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/codec.cc" "src/CMakeFiles/dl_compress.dir/compress/codec.cc.o" "gcc" "src/CMakeFiles/dl_compress.dir/compress/codec.cc.o.d"
  "/root/repo/src/compress/image_codec.cc" "src/CMakeFiles/dl_compress.dir/compress/image_codec.cc.o" "gcc" "src/CMakeFiles/dl_compress.dir/compress/image_codec.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/CMakeFiles/dl_compress.dir/compress/lz77.cc.o" "gcc" "src/CMakeFiles/dl_compress.dir/compress/lz77.cc.o.d"
  "/root/repo/src/compress/simple_codecs.cc" "src/CMakeFiles/dl_compress.dir/compress/simple_codecs.cc.o" "gcc" "src/CMakeFiles/dl_compress.dir/compress/simple_codecs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
