# Empty compiler generated dependencies file for dl_version.
# This may be replaced when dependencies are built.
