file(REMOVE_RECURSE
  "CMakeFiles/dl_version.dir/version/branch_lock.cc.o"
  "CMakeFiles/dl_version.dir/version/branch_lock.cc.o.d"
  "CMakeFiles/dl_version.dir/version/version_control.cc.o"
  "CMakeFiles/dl_version.dir/version/version_control.cc.o.d"
  "libdl_version.a"
  "libdl_version.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_version.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
