file(REMOVE_RECURSE
  "libdl_version.a"
)
