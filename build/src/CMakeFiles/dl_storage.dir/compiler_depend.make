# Empty compiler generated dependencies file for dl_storage.
# This may be replaced when dependencies are built.
