
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/layered_store.cc" "src/CMakeFiles/dl_storage.dir/storage/layered_store.cc.o" "gcc" "src/CMakeFiles/dl_storage.dir/storage/layered_store.cc.o.d"
  "/root/repo/src/storage/memory_store.cc" "src/CMakeFiles/dl_storage.dir/storage/memory_store.cc.o" "gcc" "src/CMakeFiles/dl_storage.dir/storage/memory_store.cc.o.d"
  "/root/repo/src/storage/posix_store.cc" "src/CMakeFiles/dl_storage.dir/storage/posix_store.cc.o" "gcc" "src/CMakeFiles/dl_storage.dir/storage/posix_store.cc.o.d"
  "/root/repo/src/storage/retrying_store.cc" "src/CMakeFiles/dl_storage.dir/storage/retrying_store.cc.o" "gcc" "src/CMakeFiles/dl_storage.dir/storage/retrying_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
