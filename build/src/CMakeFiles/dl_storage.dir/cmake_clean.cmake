file(REMOVE_RECURSE
  "CMakeFiles/dl_storage.dir/storage/layered_store.cc.o"
  "CMakeFiles/dl_storage.dir/storage/layered_store.cc.o.d"
  "CMakeFiles/dl_storage.dir/storage/memory_store.cc.o"
  "CMakeFiles/dl_storage.dir/storage/memory_store.cc.o.d"
  "CMakeFiles/dl_storage.dir/storage/posix_store.cc.o"
  "CMakeFiles/dl_storage.dir/storage/posix_store.cc.o.d"
  "CMakeFiles/dl_storage.dir/storage/retrying_store.cc.o"
  "CMakeFiles/dl_storage.dir/storage/retrying_store.cc.o.d"
  "libdl_storage.a"
  "libdl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
