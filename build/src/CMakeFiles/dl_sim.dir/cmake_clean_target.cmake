file(REMOVE_RECURSE
  "libdl_sim.a"
)
