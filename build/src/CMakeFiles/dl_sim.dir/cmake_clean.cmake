file(REMOVE_RECURSE
  "CMakeFiles/dl_sim.dir/sim/gpu_model.cc.o"
  "CMakeFiles/dl_sim.dir/sim/gpu_model.cc.o.d"
  "CMakeFiles/dl_sim.dir/sim/network_model.cc.o"
  "CMakeFiles/dl_sim.dir/sim/network_model.cc.o.d"
  "CMakeFiles/dl_sim.dir/sim/workload.cc.o"
  "CMakeFiles/dl_sim.dir/sim/workload.cc.o.d"
  "libdl_sim.a"
  "libdl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
