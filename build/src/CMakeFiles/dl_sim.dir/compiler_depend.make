# Empty compiler generated dependencies file for dl_sim.
# This may be replaced when dependencies are built.
