file(REMOVE_RECURSE
  "libdl_ingest.a"
)
