file(REMOVE_RECURSE
  "CMakeFiles/dl_ingest.dir/ingest/connectors.cc.o"
  "CMakeFiles/dl_ingest.dir/ingest/connectors.cc.o.d"
  "CMakeFiles/dl_ingest.dir/ingest/pipeline.cc.o"
  "CMakeFiles/dl_ingest.dir/ingest/pipeline.cc.o.d"
  "libdl_ingest.a"
  "libdl_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
