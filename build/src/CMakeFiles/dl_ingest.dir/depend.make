# Empty dependencies file for dl_ingest.
# This may be replaced when dependencies are built.
