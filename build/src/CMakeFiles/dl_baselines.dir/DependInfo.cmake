
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/beton.cc" "src/CMakeFiles/dl_baselines.dir/baselines/beton.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/beton.cc.o.d"
  "/root/repo/src/baselines/chunk_grid.cc" "src/CMakeFiles/dl_baselines.dir/baselines/chunk_grid.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/chunk_grid.cc.o.d"
  "/root/repo/src/baselines/folder.cc" "src/CMakeFiles/dl_baselines.dir/baselines/folder.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/folder.cc.o.d"
  "/root/repo/src/baselines/format.cc" "src/CMakeFiles/dl_baselines.dir/baselines/format.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/format.cc.o.d"
  "/root/repo/src/baselines/framed_shards.cc" "src/CMakeFiles/dl_baselines.dir/baselines/framed_shards.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/framed_shards.cc.o.d"
  "/root/repo/src/baselines/loader_engine.cc" "src/CMakeFiles/dl_baselines.dir/baselines/loader_engine.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/loader_engine.cc.o.d"
  "/root/repo/src/baselines/parquet_like.cc" "src/CMakeFiles/dl_baselines.dir/baselines/parquet_like.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/parquet_like.cc.o.d"
  "/root/repo/src/baselines/tar.cc" "src/CMakeFiles/dl_baselines.dir/baselines/tar.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/tar.cc.o.d"
  "/root/repo/src/baselines/webdataset.cc" "src/CMakeFiles/dl_baselines.dir/baselines/webdataset.cc.o" "gcc" "src/CMakeFiles/dl_baselines.dir/baselines/webdataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
