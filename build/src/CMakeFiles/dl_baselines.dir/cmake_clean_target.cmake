file(REMOVE_RECURSE
  "libdl_baselines.a"
)
