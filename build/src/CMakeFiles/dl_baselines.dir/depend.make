# Empty dependencies file for dl_baselines.
# This may be replaced when dependencies are built.
