file(REMOVE_RECURSE
  "CMakeFiles/dl_baselines.dir/baselines/beton.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/beton.cc.o.d"
  "CMakeFiles/dl_baselines.dir/baselines/chunk_grid.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/chunk_grid.cc.o.d"
  "CMakeFiles/dl_baselines.dir/baselines/folder.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/folder.cc.o.d"
  "CMakeFiles/dl_baselines.dir/baselines/format.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/format.cc.o.d"
  "CMakeFiles/dl_baselines.dir/baselines/framed_shards.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/framed_shards.cc.o.d"
  "CMakeFiles/dl_baselines.dir/baselines/loader_engine.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/loader_engine.cc.o.d"
  "CMakeFiles/dl_baselines.dir/baselines/parquet_like.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/parquet_like.cc.o.d"
  "CMakeFiles/dl_baselines.dir/baselines/tar.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/tar.cc.o.d"
  "CMakeFiles/dl_baselines.dir/baselines/webdataset.cc.o"
  "CMakeFiles/dl_baselines.dir/baselines/webdataset.cc.o.d"
  "libdl_baselines.a"
  "libdl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
