# Empty compiler generated dependencies file for dl_tql.
# This may be replaced when dependencies are built.
