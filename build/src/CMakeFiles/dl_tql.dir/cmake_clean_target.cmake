file(REMOVE_RECURSE
  "libdl_tql.a"
)
