
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tql/executor.cc" "src/CMakeFiles/dl_tql.dir/tql/executor.cc.o" "gcc" "src/CMakeFiles/dl_tql.dir/tql/executor.cc.o.d"
  "/root/repo/src/tql/lexer.cc" "src/CMakeFiles/dl_tql.dir/tql/lexer.cc.o" "gcc" "src/CMakeFiles/dl_tql.dir/tql/lexer.cc.o.d"
  "/root/repo/src/tql/parser.cc" "src/CMakeFiles/dl_tql.dir/tql/parser.cc.o" "gcc" "src/CMakeFiles/dl_tql.dir/tql/parser.cc.o.d"
  "/root/repo/src/tql/value.cc" "src/CMakeFiles/dl_tql.dir/tql/value.cc.o" "gcc" "src/CMakeFiles/dl_tql.dir/tql/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_tsf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_version.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dl_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
