file(REMOVE_RECURSE
  "CMakeFiles/dl_tql.dir/tql/executor.cc.o"
  "CMakeFiles/dl_tql.dir/tql/executor.cc.o.d"
  "CMakeFiles/dl_tql.dir/tql/lexer.cc.o"
  "CMakeFiles/dl_tql.dir/tql/lexer.cc.o.d"
  "CMakeFiles/dl_tql.dir/tql/parser.cc.o"
  "CMakeFiles/dl_tql.dir/tql/parser.cc.o.d"
  "CMakeFiles/dl_tql.dir/tql/value.cc.o"
  "CMakeFiles/dl_tql.dir/tql/value.cc.o.d"
  "libdl_tql.a"
  "libdl_tql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_tql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
