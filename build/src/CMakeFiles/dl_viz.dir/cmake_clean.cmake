file(REMOVE_RECURSE
  "CMakeFiles/dl_viz.dir/viz/visualizer.cc.o"
  "CMakeFiles/dl_viz.dir/viz/visualizer.cc.o.d"
  "libdl_viz.a"
  "libdl_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
