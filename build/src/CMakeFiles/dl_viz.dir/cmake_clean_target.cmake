file(REMOVE_RECURSE
  "libdl_viz.a"
)
