# Empty compiler generated dependencies file for dl_viz.
# This may be replaced when dependencies are built.
