file(REMOVE_RECURSE
  "CMakeFiles/dl_util.dir/util/coding.cc.o"
  "CMakeFiles/dl_util.dir/util/coding.cc.o.d"
  "CMakeFiles/dl_util.dir/util/crc32.cc.o"
  "CMakeFiles/dl_util.dir/util/crc32.cc.o.d"
  "CMakeFiles/dl_util.dir/util/json.cc.o"
  "CMakeFiles/dl_util.dir/util/json.cc.o.d"
  "CMakeFiles/dl_util.dir/util/status.cc.o"
  "CMakeFiles/dl_util.dir/util/status.cc.o.d"
  "CMakeFiles/dl_util.dir/util/string_util.cc.o"
  "CMakeFiles/dl_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/dl_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/dl_util.dir/util/thread_pool.cc.o.d"
  "libdl_util.a"
  "libdl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
