# Empty dependencies file for dl_util.
# This may be replaced when dependencies are built.
