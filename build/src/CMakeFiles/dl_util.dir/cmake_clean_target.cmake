file(REMOVE_RECURSE
  "libdl_util.a"
)
