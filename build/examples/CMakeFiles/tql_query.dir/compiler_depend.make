# Empty compiler generated dependencies file for tql_query.
# This may be replaced when dependencies are built.
