file(REMOVE_RECURSE
  "CMakeFiles/tql_query.dir/tql_query.cpp.o"
  "CMakeFiles/tql_query.dir/tql_query.cpp.o.d"
  "tql_query"
  "tql_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tql_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
