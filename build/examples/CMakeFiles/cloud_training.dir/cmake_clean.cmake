file(REMOVE_RECURSE
  "CMakeFiles/cloud_training.dir/cloud_training.cpp.o"
  "CMakeFiles/cloud_training.dir/cloud_training.cpp.o.d"
  "cloud_training"
  "cloud_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
