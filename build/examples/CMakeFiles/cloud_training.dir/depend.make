# Empty dependencies file for cloud_training.
# This may be replaced when dependencies are built.
