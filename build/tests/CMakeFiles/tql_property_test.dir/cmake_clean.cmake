file(REMOVE_RECURSE
  "CMakeFiles/tql_property_test.dir/tql_property_test.cc.o"
  "CMakeFiles/tql_property_test.dir/tql_property_test.cc.o.d"
  "tql_property_test"
  "tql_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tql_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
