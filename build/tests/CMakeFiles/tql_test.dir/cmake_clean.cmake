file(REMOVE_RECURSE
  "CMakeFiles/tql_test.dir/tql_test.cc.o"
  "CMakeFiles/tql_test.dir/tql_test.cc.o.d"
  "tql_test"
  "tql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
