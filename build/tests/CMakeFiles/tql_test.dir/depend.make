# Empty dependencies file for tql_test.
# This may be replaced when dependencies are built.
