# Empty dependencies file for branch_lock_test.
# This may be replaced when dependencies are built.
