file(REMOVE_RECURSE
  "CMakeFiles/branch_lock_test.dir/branch_lock_test.cc.o"
  "CMakeFiles/branch_lock_test.dir/branch_lock_test.cc.o.d"
  "branch_lock_test"
  "branch_lock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
