file(REMOVE_RECURSE
  "CMakeFiles/tsf_encoding_test.dir/tsf_encoding_test.cc.o"
  "CMakeFiles/tsf_encoding_test.dir/tsf_encoding_test.cc.o.d"
  "tsf_encoding_test"
  "tsf_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
