# Empty dependencies file for tsf_encoding_test.
# This may be replaced when dependencies are built.
