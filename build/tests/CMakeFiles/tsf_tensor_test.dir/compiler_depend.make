# Empty compiler generated dependencies file for tsf_tensor_test.
# This may be replaced when dependencies are built.
