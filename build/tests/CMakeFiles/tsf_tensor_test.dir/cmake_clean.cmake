file(REMOVE_RECURSE
  "CMakeFiles/tsf_tensor_test.dir/tsf_tensor_test.cc.o"
  "CMakeFiles/tsf_tensor_test.dir/tsf_tensor_test.cc.o.d"
  "tsf_tensor_test"
  "tsf_tensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
